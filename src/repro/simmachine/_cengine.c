/* Compiled discrete-event simulation core.
 *
 * A hand-written CPython extension mirroring `repro.simmachine.engine`
 * bit-for-bit: identical IEEE-754 arithmetic order, identical
 * (time, seq) tie-breaking, identical exception types and messages,
 * and identical fault-site checks.  The pure-Python module remains the
 * reference implementation; `repro.simmachine._backend` selects between
 * the two at import time (REPRO_ENGINE=pure|compiled).
 *
 * Performance model versus the pure engine:
 *   - the heap holds C structs {double time; long long seq; PyObject*},
 *     so scheduling allocates no tuples and pops compare plain doubles;
 *   - waiters (Process / AllOf / AnyOf) are stored directly in the
 *     event's single-callback slot and dispatched by C type, so no
 *     bound-method objects are allocated per event;
 *   - processes resume generators through PyIter_Send, taking the
 *     PYGEN_RETURN fast path that never materialises StopIteration.
 *
 * Compatibility floor is CPython 3.10 (PyIter_Send is public from
 * 3.10; PyType_GetName and PyErr_GetRaisedException are deliberately
 * avoided).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <stddef.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Module-level state (single-phase init; the module is a singleton). */

static PyObject *SimulationError = NULL; /* repro.errors.SimulationError */
static PyObject *DeadlockError = NULL;   /* repro.errors.DeadlockError */
static PyObject *faults_module = NULL;   /* repro.faults, imported lazily */
static PyObject *abc_generator = NULL;   /* collections.abc.Generator, lazy */

static PyObject *str_check = NULL;
static PyObject *str_param = NULL;
static PyObject *str_value = NULL;
static PyObject *str_throw = NULL;
static PyObject *str_name = NULL;
static PyObject *str_sim_run_error = NULL;
static PyObject *str_sim_run_noise = NULL;

/* ------------------------------------------------------------------ */
/* Object layouts. */

typedef struct {
    double time;
    long long seq;
    PyObject *event; /* owned */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    double now;
    double delay_scale;
    long long seq;
    long long events_processed;
    HeapEntry *heap;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    PyObject *alive; /* set of Process */
} SimulatorObject;

typedef struct {
    PyObject_HEAD
    PyObject *sim;       /* SimulatorObject */
    PyObject *cb;        /* single-waiter slot: callable or waiter object */
    PyObject *callbacks; /* list, lazily allocated */
    PyObject *value;     /* NULL while pending (the _PENDING sentinel) */
    PyObject *exc;       /* failure exception, or NULL */
    char processed;
} EventObject;

typedef struct {
    EventObject base;
    PyObject *children; /* list of Event */
    Py_ssize_t remaining;
} AllOfObject;

typedef struct {
    EventObject base;
    PyObject *children; /* list of Event */
} AnyOfObject;

typedef struct {
    EventObject base;
    PyObject *name;
    PyObject *gen;
    PyObject *gen_throw; /* gen.throw, cached on first failing event */
} ProcessObject;

static PyTypeObject Event_Type;
static PyTypeObject Timeout_Type;
static PyTypeObject AllOf_Type;
static PyTypeObject AnyOf_Type;
static PyTypeObject Process_Type;
static PyTypeObject Simulator_Type;

#define Event_CheckAny(op) PyObject_TypeCheck((op), &Event_Type)
#define Simulator_CheckAny(op) PyObject_TypeCheck((op), &Simulator_Type)

static int process_resume(ProcessObject *proc, EventObject *event);
static int allof_on_child(AllOfObject *self, EventObject *child);
static int anyof_on_child(AnyOfObject *self, EventObject *child);

/* ------------------------------------------------------------------ */
/* Small helpers. */

/* Matches `type(x).__name__`: the final dotted component of tp_name. */
static const char *
type_short_name(PyObject *op)
{
    const char *name = Py_TYPE(op)->tp_name;
    const char *dot = strrchr(name, '.');
    return dot != NULL ? dot + 1 : name;
}

static int
lazy_import_faults(void)
{
    if (faults_module == NULL) {
        faults_module = PyImport_ImportModule("repro.faults");
        if (faults_module == NULL) {
            return -1;
        }
    }
    return 0;
}

/* Raise SimulationError with a pre-built message object (steals msg). */
static void
raise_simulation_error_obj(PyObject *msg)
{
    if (msg == NULL) {
        return;
    }
    PyErr_SetObject(SimulationError, msg);
    Py_DECREF(msg);
}

/* ------------------------------------------------------------------ */
/* The scheduling heap: a binary min-heap over (time, seq).  `seq` is
 * unique per simulator, making the key order total — any valid heap
 * therefore pops in exactly the order the pure engine's heapq does. */

/* Strict lexicographic (time, seq) "less than", matching Python tuple
 * comparison: equality on time is tested first, so NaN (== and < both
 * false) never reorders, exactly as in heapq. */
static inline int
entry_lt(double t1, long long s1, double t2, long long s2)
{
    if (t1 == t2) {
        return s1 < s2;
    }
    return t1 < t2;
}

static int
sim_heap_push(SimulatorObject *sim, double time, PyObject *event)
{
    if (sim->heap_len == sim->heap_cap) {
        Py_ssize_t cap = sim->heap_cap ? sim->heap_cap * 2 : 64;
        HeapEntry *heap = PyMem_Realloc(sim->heap, (size_t)cap * sizeof(HeapEntry));
        if (heap == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        sim->heap = heap;
        sim->heap_cap = cap;
    }
    long long seq = ++sim->seq;
    HeapEntry *heap = sim->heap;
    Py_ssize_t i = sim->heap_len++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (!entry_lt(time, seq, heap[parent].time, heap[parent].seq)) {
            break;
        }
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i].time = time;
    heap[i].seq = seq;
    Py_INCREF(event);
    heap[i].event = event;
    return 0;
}

/* Pop the minimum entry; returns an owned event reference. */
static PyObject *
sim_heap_pop(SimulatorObject *sim, double *time_out)
{
    HeapEntry *heap = sim->heap;
    PyObject *event = heap[0].event;
    *time_out = heap[0].time;
    Py_ssize_t len = --sim->heap_len;
    if (len > 0) {
        HeapEntry last = heap[len];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= len) {
                break;
            }
            Py_ssize_t right = child + 1;
            if (right < len
                && entry_lt(heap[right].time, heap[right].seq,
                            heap[child].time, heap[child].seq)) {
                child = right;
            }
            if (!entry_lt(heap[child].time, heap[child].seq, last.time, last.seq)) {
                break;
            }
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = last;
    }
    return event;
}

/* ------------------------------------------------------------------ */
/* Event internals shared by every trigger path. */

#define EVENT_TRIGGERED(ev) ((ev)->value != NULL || (ev)->exc != NULL)

static int
event_check_untriggered(EventObject *self)
{
    if (EVENT_TRIGGERED(self)) {
        PyErr_SetString(SimulationError, "event triggered twice");
        return -1;
    }
    return 0;
}

/* succeed(): store the value and enqueue at the current time. */
static int
event_succeed_obj(EventObject *self, PyObject *value)
{
    if (event_check_untriggered(self) < 0) {
        return -1;
    }
    Py_INCREF(value);
    self->value = value;
    SimulatorObject *sim = (SimulatorObject *)self->sim;
    return sim_heap_push(sim, sim->now, (PyObject *)self);
}

/* fail(): store the exception and enqueue via _schedule(self, 0.0). */
static int
event_fail_obj(EventObject *self, PyObject *exc)
{
    if (event_check_untriggered(self) < 0) {
        return -1;
    }
    Py_INCREF(exc);
    self->exc = exc;
    Py_INCREF(Py_None);
    self->value = Py_None;
    SimulatorObject *sim = (SimulatorObject *)self->sim;
    double delay = 0.0;
    if (sim->delay_scale != 1.0) {
        delay *= sim->delay_scale;
    }
    return sim_heap_push(sim, sim->now + delay, (PyObject *)self);
}

/* Register a waiter on a *pending* event: fill the single-callback slot
 * first, fall back to the callbacks list (the pure engine's inlined
 * add_callback fast path). */
static int
event_add_waiter(EventObject *target, PyObject *waiter)
{
    if (target->cb == NULL) {
        Py_INCREF(waiter);
        target->cb = waiter;
        return 0;
    }
    if (target->callbacks == NULL) {
        PyObject *list = PyList_New(1);
        if (list == NULL) {
            return -1;
        }
        Py_INCREF(waiter);
        PyList_SET_ITEM(list, 0, waiter);
        target->callbacks = list;
        return 0;
    }
    return PyList_Append(target->callbacks, waiter);
}

/* Run one waiter.  Internal waiters (Process/AllOf/AnyOf) are stored as
 * the objects themselves and dispatched by type — the compiled
 * equivalent of the pure engine's pre-bound `_resume_cb` methods —
 * while anything else is an ordinary Python callable. */
static int
invoke_waiter(PyObject *cb, EventObject *event)
{
    PyTypeObject *tp = Py_TYPE(cb);
    if (tp == &Process_Type || PyType_IsSubtype(tp, &Process_Type)) {
        return process_resume((ProcessObject *)cb, event);
    }
    if (tp == &AllOf_Type || PyType_IsSubtype(tp, &AllOf_Type)) {
        return allof_on_child((AllOfObject *)cb, event);
    }
    if (tp == &AnyOf_Type || PyType_IsSubtype(tp, &AnyOf_Type)) {
        return anyof_on_child((AnyOfObject *)cb, event);
    }
    PyObject *res = PyObject_CallOneArg(cb, (PyObject *)event);
    if (res == NULL) {
        return -1;
    }
    Py_DECREF(res);
    return 0;
}

/* Event._process(): mark processed, drain the slot then the list. */
static int
event_dispatch(EventObject *event)
{
    event->processed = 1;
    PyObject *cb = event->cb;
    if (cb != NULL) {
        event->cb = NULL;
        int rc = invoke_waiter(cb, event);
        Py_DECREF(cb);
        if (rc < 0) {
            return -1;
        }
    }
    PyObject *callbacks = event->callbacks;
    if (callbacks != NULL) {
        event->callbacks = NULL;
        Py_ssize_t n = PyList_GET_SIZE(callbacks);
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *item = PyList_GET_ITEM(callbacks, i);
            Py_INCREF(item);
            int rc = invoke_waiter(item, event);
            Py_DECREF(item);
            if (rc < 0) {
                Py_DECREF(callbacks);
                return -1;
            }
        }
        Py_DECREF(callbacks);
    }
    return 0;
}

/* Allocate a bare pending event bound to `sim` (sim.event() fast path;
 * also the Process start event). */
static EventObject *
event_alloc(PyTypeObject *type, SimulatorObject *sim)
{
    EventObject *self = (EventObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    Py_INCREF(sim);
    self->sim = (PyObject *)sim;
    return self;
}

/* ------------------------------------------------------------------ */
/* Event: Python-facing surface. */

static PyObject *
event_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    return type->tp_alloc(type, 0);
}

static int
event_init_common(EventObject *self, PyObject *sim)
{
    if (!Simulator_CheckAny(sim)) {
        PyErr_Format(PyExc_TypeError,
                     "expected a Simulator, got %s", type_short_name(sim));
        return -1;
    }
    PyObject *old_sim = self->sim;
    Py_INCREF(sim);
    self->sim = sim;
    Py_XDECREF(old_sim);
    Py_CLEAR(self->cb);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    Py_CLEAR(self->exc);
    self->processed = 0;
    return 0;
}

static int
event_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *sim;
    static char *kwlist[] = {"sim", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O:Event", kwlist, &sim)) {
        return -1;
    }
    return event_init_common((EventObject *)op, sim);
}

static int
event_traverse(PyObject *op, visitproc visit, void *arg)
{
    EventObject *self = (EventObject *)op;
    Py_VISIT(self->sim);
    Py_VISIT(self->cb);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    Py_VISIT(self->exc);
    return 0;
}

static int
event_clear(PyObject *op)
{
    EventObject *self = (EventObject *)op;
    Py_CLEAR(self->sim);
    Py_CLEAR(self->cb);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    Py_CLEAR(self->exc);
    return 0;
}

static void
event_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    (void)event_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyObject *
event_get_triggered(PyObject *op, void *closure)
{
    EventObject *self = (EventObject *)op;
    return PyBool_FromLong(EVENT_TRIGGERED(self));
}

static PyObject *
event_get_value(PyObject *op, void *closure)
{
    EventObject *self = (EventObject *)op;
    if (!EVENT_TRIGGERED(self)) {
        PyErr_SetString(SimulationError, "event value read before trigger");
        return NULL;
    }
    Py_INCREF(self->value);
    return self->value;
}

static PyObject *
event_get_processed(PyObject *op, void *closure)
{
    return PyBool_FromLong(((EventObject *)op)->processed);
}

static PyObject *
event_get_exc(PyObject *op, void *closure)
{
    EventObject *self = (EventObject *)op;
    PyObject *exc = self->exc != NULL ? self->exc : Py_None;
    Py_INCREF(exc);
    return exc;
}

static PyObject *
event_succeed(PyObject *op, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    EventObject *self = (EventObject *)op;
    PyObject *value = Py_None;
    Py_ssize_t nkw = kwnames != NULL ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs == 1 && nkw == 0) {
        value = args[0];
    }
    else if (nargs == 0 && nkw == 1
             && PyUnicode_CompareWithASCIIString(
                    PyTuple_GET_ITEM(kwnames, 0), "value") == 0) {
        value = args[0];
    }
    else if (nargs != 0 || nkw != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "succeed() takes at most one argument 'value'");
        return NULL;
    }
    if (event_succeed_obj(self, value) < 0) {
        return NULL;
    }
    Py_INCREF(op);
    return op;
}

static PyObject *
event_trigger_at(PyObject *op, PyObject *const *args, Py_ssize_t nargs,
                 PyObject *kwnames)
{
    EventObject *self = (EventObject *)op;
    PyObject *value = NULL;
    PyObject *delay_obj = NULL;
    Py_ssize_t nkw = kwnames != NULL ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs == 2 && nkw == 0) {
        value = args[0];
        delay_obj = args[1];
    }
    else {
        /* Rare keyword spellings: value=/delay= in any mix. */
        if (nargs >= 1) {
            value = args[0];
        }
        if (nargs >= 2) {
            delay_obj = args[1];
        }
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
            PyObject *arg = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(kw, "value") == 0
                && value == NULL) {
                value = arg;
            }
            else if (PyUnicode_CompareWithASCIIString(kw, "delay") == 0
                     && delay_obj == NULL) {
                delay_obj = arg;
            }
            else {
                PyErr_SetString(PyExc_TypeError,
                                "trigger_at() takes arguments (value, delay)");
                return NULL;
            }
        }
        if (value == NULL || delay_obj == NULL || nargs > 2) {
            PyErr_SetString(PyExc_TypeError,
                            "trigger_at() takes arguments (value, delay)");
            return NULL;
        }
    }
    if (event_check_untriggered(self) < 0) {
        return NULL;
    }
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    if (delay < 0.0) {
        raise_simulation_error_obj(
            PyUnicode_FromFormat("negative trigger delay %R", delay_obj));
        return NULL;
    }
    Py_INCREF(value);
    self->value = value;
    SimulatorObject *sim = (SimulatorObject *)self->sim;
    if (sim->delay_scale != 1.0) {
        delay *= sim->delay_scale;
    }
    if (sim_heap_push(sim, sim->now + delay, op) < 0) {
        return NULL;
    }
    Py_INCREF(op);
    return op;
}

static PyObject *
event_fail(PyObject *op, PyObject *exc)
{
    if (event_fail_obj((EventObject *)op, exc) < 0) {
        return NULL;
    }
    Py_INCREF(op);
    return op;
}

static PyObject *
event_add_callback(PyObject *op, PyObject *cb)
{
    EventObject *self = (EventObject *)op;
    if (self->processed) {
        if (invoke_waiter(cb, self) < 0) {
            return NULL;
        }
        Py_RETURN_NONE;
    }
    if (event_add_waiter(self, cb) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
event_process_method(PyObject *op, PyObject *noargs)
{
    if (event_dispatch((EventObject *)op) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyMethodDef event_methods[] = {
    {"succeed", (PyCFunction)(void (*)(void))event_succeed,
     METH_FASTCALL | METH_KEYWORDS,
     "Trigger the event successfully with ``value`` at the current time."},
    {"trigger_at", (PyCFunction)(void (*)(void))event_trigger_at,
     METH_FASTCALL | METH_KEYWORDS,
     "Trigger with ``value`` after ``delay`` seconds (message arrival)."},
    {"fail", (PyCFunction)event_fail, METH_O,
     "Trigger the event with an exception to throw into waiters."},
    {"add_callback", (PyCFunction)event_add_callback, METH_O,
     "Register ``cb`` to run when the event is processed."},
    {"_process", (PyCFunction)event_process_method, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef event_getsets[] = {
    {"triggered", event_get_triggered, NULL,
     "True once the event has a value and sits on (or left) the queue.",
     NULL},
    {"value", event_get_value, NULL,
     "The value the event fired with (only valid once triggered).", NULL},
    {"processed", event_get_processed, NULL, NULL, NULL},
    {"_exc", event_get_exc, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMemberDef event_members[] = {
    {"sim", T_OBJECT_EX, offsetof(EventObject, sim), READONLY, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simmachine._cengine.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = event_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot occurrence in simulated time.",
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
    .tp_methods = event_methods,
    .tp_getset = event_getsets,
    .tp_members = event_members,
    .tp_init = event_init,
    .tp_new = event_new,
};

/* ------------------------------------------------------------------ */
/* Timeout. */

/* The shared core of Timeout(sim, delay, value) and sim.timeout():
 * validate, scale, and push — the hottest constructor in the engine. */
static int
timeout_setup(EventObject *self, SimulatorObject *sim, PyObject *delay_obj,
              PyObject *value)
{
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred()) {
        return -1;
    }
    if (delay < 0.0) {
        raise_simulation_error_obj(
            PyUnicode_FromFormat("negative timeout delay %R", delay_obj));
        return -1;
    }
    Py_INCREF(value);
    self->value = value;
    if (sim->delay_scale != 1.0) {
        delay *= sim->delay_scale;
    }
    return sim_heap_push(sim, sim->now + delay, (PyObject *)self);
}

static int
timeout_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    PyObject *sim;
    PyObject *delay;
    PyObject *value = Py_None;
    static char *kwlist[] = {"sim", "delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O:Timeout", kwlist,
                                     &sim, &delay, &value)) {
        return -1;
    }
    if (event_init_common((EventObject *)op, sim) < 0) {
        return -1;
    }
    return timeout_setup((EventObject *)op, (SimulatorObject *)sim, delay,
                         value);
}

static PyTypeObject Timeout_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simmachine._cengine.Timeout",
    .tp_basicsize = sizeof(EventObject),
    .tp_dealloc = event_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Event that fires ``delay`` simulated seconds after creation.",
    .tp_traverse = event_traverse,
    .tp_clear = event_clear,
    .tp_init = timeout_init,
    /* everything else inherited from Event */
};

/* ------------------------------------------------------------------ */
/* AllOf: barrier over a set of events. */

/* Register `self` as a waiter on each child, mirroring the pure
 * engine's ev.add_callback(self._on_child) — including the immediate
 * callback when a child is already processed. */
static int
gather_register_children(EventObject *self, PyObject *children,
                         int (*on_child)(EventObject *, EventObject *))
{
    Py_ssize_t n = PyList_GET_SIZE(children);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(children, i);
        if (!Event_CheckAny(item)) {
            PyErr_Format(PyExc_TypeError,
                         "expected an Event, got %s", type_short_name(item));
            return -1;
        }
        EventObject *child = (EventObject *)item;
        if (child->processed) {
            if (on_child(self, child) < 0) {
                return -1;
            }
        }
        else if (event_add_waiter(child, (PyObject *)self) < 0) {
            return -1;
        }
    }
    return 0;
}

static int
allof_on_child_e(EventObject *self, EventObject *child)
{
    return allof_on_child((AllOfObject *)self, child);
}

static int
anyof_on_child_e(EventObject *self, EventObject *child)
{
    return anyof_on_child((AnyOfObject *)self, child);
}

static int
allof_on_child(AllOfObject *self, EventObject *child)
{
    EventObject *base = &self->base;
    if (EVENT_TRIGGERED(base)) {
        return 0;
    }
    if (child->exc != NULL) {
        return event_fail_obj(base, child->exc);
    }
    if (--self->remaining > 0) {
        return 0;
    }
    PyObject *children = self->children;
    Py_ssize_t n = PyList_GET_SIZE(children);
    PyObject *values = PyList_New(n);
    if (values == NULL) {
        return -1;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        EventObject *ev = (EventObject *)PyList_GET_ITEM(children, i);
        if (!EVENT_TRIGGERED(ev)) {
            Py_DECREF(values);
            PyErr_SetString(SimulationError, "event value read before trigger");
            return -1;
        }
        Py_INCREF(ev->value);
        PyList_SET_ITEM(values, i, ev->value);
    }
    int rc = event_succeed_obj(base, values);
    Py_DECREF(values);
    return rc;
}

static int
allof_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    AllOfObject *self = (AllOfObject *)op;
    PyObject *sim;
    PyObject *events;
    static char *kwlist[] = {"sim", "events", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO:AllOf", kwlist,
                                     &sim, &events)) {
        return -1;
    }
    if (event_init_common(&self->base, sim) < 0) {
        return -1;
    }
    PyObject *children = PySequence_List(events);
    if (children == NULL) {
        return -1;
    }
    Py_XSETREF(self->children, children);
    self->remaining = PyList_GET_SIZE(children);
    if (self->remaining == 0) {
        PyObject *empty = PyList_New(0);
        if (empty == NULL) {
            return -1;
        }
        int rc = event_succeed_obj(&self->base, empty);
        Py_DECREF(empty);
        return rc;
    }
    return gather_register_children(&self->base, children, allof_on_child_e);
}

static int
allof_traverse(PyObject *op, visitproc visit, void *arg)
{
    Py_VISIT(((AllOfObject *)op)->children);
    return event_traverse(op, visit, arg);
}

static int
allof_clear(PyObject *op)
{
    Py_CLEAR(((AllOfObject *)op)->children);
    return event_clear(op);
}

static void
allof_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    (void)allof_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyTypeObject AllOf_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simmachine._cengine.AllOf",
    .tp_basicsize = sizeof(AllOfObject),
    .tp_dealloc = allof_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fires once every child event has been processed.",
    .tp_traverse = allof_traverse,
    .tp_clear = allof_clear,
    .tp_init = allof_init,
};

/* ------------------------------------------------------------------ */
/* AnyOf: first completion wins. */

static int
anyof_on_child(AnyOfObject *self, EventObject *child)
{
    EventObject *base = &self->base;
    if (EVENT_TRIGGERED(base)) {
        return 0;
    }
    if (child->exc != NULL) {
        return event_fail_obj(base, child->exc);
    }
    /* Recover the child's index by identity.  The pure engine captures
     * the index in a per-child lambda; with callbacks running in
     * registration order, the first occurrence wins there too, so the
     * lowest identity match is the identical answer. */
    PyObject *children = self->children;
    Py_ssize_t n = PyList_GET_SIZE(children);
    Py_ssize_t index = 0;
    for (; index < n; index++) {
        if (PyList_GET_ITEM(children, index) == (PyObject *)child) {
            break;
        }
    }
    if (!EVENT_TRIGGERED(child)) {
        PyErr_SetString(SimulationError, "event value read before trigger");
        return -1;
    }
    PyObject *pair = Py_BuildValue("(nO)", index, child->value);
    if (pair == NULL) {
        return -1;
    }
    int rc = event_succeed_obj(base, pair);
    Py_DECREF(pair);
    return rc;
}

static int
anyof_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    AnyOfObject *self = (AnyOfObject *)op;
    PyObject *sim;
    PyObject *events;
    static char *kwlist[] = {"sim", "events", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO:AnyOf", kwlist,
                                     &sim, &events)) {
        return -1;
    }
    if (event_init_common(&self->base, sim) < 0) {
        return -1;
    }
    PyObject *children = PySequence_List(events);
    if (children == NULL) {
        return -1;
    }
    Py_XSETREF(self->children, children);
    if (PyList_GET_SIZE(children) == 0) {
        PyErr_SetString(SimulationError, "AnyOf needs at least one event");
        return -1;
    }
    return gather_register_children(&self->base, children, anyof_on_child_e);
}

static int
anyof_traverse(PyObject *op, visitproc visit, void *arg)
{
    Py_VISIT(((AnyOfObject *)op)->children);
    return event_traverse(op, visit, arg);
}

static int
anyof_clear(PyObject *op)
{
    Py_CLEAR(((AnyOfObject *)op)->children);
    return event_clear(op);
}

static void
anyof_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    (void)anyof_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyTypeObject AnyOf_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simmachine._cengine.AnyOf",
    .tp_basicsize = sizeof(AnyOfObject),
    .tp_dealloc = anyof_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fires when the first child event is processed.",
    .tp_traverse = anyof_traverse,
    .tp_clear = anyof_clear,
    .tp_init = anyof_init,
};

/* ------------------------------------------------------------------ */
/* Process: drives a generator of events. */

static int
process_is_generator(PyObject *gen)
{
    if (PyGen_Check(gen)) {
        return 1;
    }
    /* Exotic generator implementations: fall back to the abc, exactly
     * like the pure engine's isinstance(gen, Generator). */
    if (abc_generator == NULL) {
        PyObject *mod = PyImport_ImportModule("collections.abc");
        if (mod == NULL) {
            return -1;
        }
        abc_generator = PyObject_GetAttrString(mod, "Generator");
        Py_DECREF(mod);
        if (abc_generator == NULL) {
            return -1;
        }
    }
    return PyObject_IsInstance(gen, abc_generator);
}

/* The resume step: feed the event's outcome into the generator and wire
 * the next yielded event — the pure engine's Process._resume with the
 * processed-target recursion unrolled into a loop. */
static int
process_resume(ProcessObject *proc, EventObject *event)
{
    EventObject *base = &proc->base;
    SimulatorObject *sim = (SimulatorObject *)base->sim;
    PyObject *ev = (PyObject *)event;
    Py_INCREF(ev);
    for (;;) {
        EventObject *cur = (EventObject *)ev;
        PyObject *target;
        if (cur->exc != NULL) {
            if (proc->gen_throw == NULL) {
                proc->gen_throw = PyObject_GetAttr(proc->gen, str_throw);
                if (proc->gen_throw == NULL) {
                    Py_DECREF(ev);
                    return -1;
                }
            }
            target = PyObject_CallOneArg(proc->gen_throw, cur->exc);
            if (target == NULL) {
                if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                    goto completed;
                }
                goto crashed;
            }
        }
        else {
            PyObject *sent = cur->value != NULL ? cur->value : Py_None;
            PySendResult sr = PyIter_Send(proc->gen, sent, &target);
            if (sr == PYGEN_RETURN) {
                /* Generator finished; `target` is its return value. */
                Py_DECREF(ev);
                if (PySet_Discard(sim->alive, (PyObject *)proc) < 0) {
                    Py_DECREF(target);
                    return -1;
                }
                int rc = event_succeed_obj(base, target);
                Py_DECREF(target);
                return rc;
            }
            if (sr == PYGEN_ERROR) {
                if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                    goto completed; /* non-native generator protocol */
                }
                goto crashed;
            }
        }
        /* The generator yielded `target` (owned). */
        Py_DECREF(ev);
        if (!Event_CheckAny(target)) {
            if (PySet_Discard(sim->alive, (PyObject *)proc) < 0) {
                Py_DECREF(target);
                return -1;
            }
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded %s, expected an Event",
                proc->name, type_short_name(target));
            Py_DECREF(target);
            if (msg == NULL) {
                return -1;
            }
            PyObject *exc = PyObject_CallOneArg(SimulationError, msg);
            Py_DECREF(msg);
            if (exc == NULL) {
                return -1;
            }
            if (event_fail_obj(base, exc) < 0) {
                Py_DECREF(exc);
                return -1;
            }
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
            Py_DECREF(exc);
            return -1;
        }
        EventObject *t = (EventObject *)target;
        if (t->processed) {
            /* Yielded an event that already fired: resume again with it
             * (the pure engine recurses here). */
            ev = target;
            continue;
        }
        int rc = event_add_waiter(t, (PyObject *)proc);
        Py_DECREF(target);
        return rc;
    }

completed:;
    /* StopIteration out of throw()/a non-native send(): the generator
     * returned; its return value rides on the exception. */
    {
        PyObject *ptype, *pvalue, *ptb;
        PyErr_Fetch(&ptype, &pvalue, &ptb);
        PyErr_NormalizeException(&ptype, &pvalue, &ptb);
        PyObject *retval;
        if (pvalue != NULL) {
            retval = PyObject_GetAttr(pvalue, str_value);
        }
        else {
            retval = Py_None;
            Py_INCREF(retval);
        }
        Py_XDECREF(ptype);
        Py_XDECREF(pvalue);
        Py_XDECREF(ptb);
        Py_DECREF(ev);
        if (retval == NULL) {
            return -1;
        }
        if (PySet_Discard(sim->alive, (PyObject *)proc) < 0) {
            Py_DECREF(retval);
            return -1;
        }
        int rc = event_succeed_obj(base, retval);
        Py_DECREF(retval);
        return rc;
    }

crashed:;
    /* The generator body raised: record the failure on the process
     * event, then let the exception keep propagating out of run(). */
    {
        PyObject *ptype, *pvalue, *ptb;
        PyErr_Fetch(&ptype, &pvalue, &ptb);
        PyErr_NormalizeException(&ptype, &pvalue, &ptb);
        Py_DECREF(ev);
        (void)PySet_Discard(sim->alive, (PyObject *)proc);
        if (pvalue != NULL && !EVENT_TRIGGERED(base)) {
            if (event_fail_obj(base, pvalue) < 0) {
                /* Keep the original exception, not the bookkeeping one. */
                PyErr_Clear();
            }
        }
        PyErr_Restore(ptype, pvalue, ptb);
        return -1;
    }
}

static int
process_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    ProcessObject *self = (ProcessObject *)op;
    PyObject *sim;
    PyObject *gen;
    PyObject *name = NULL;
    static char *kwlist[] = {"sim", "gen", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|U:Process", kwlist,
                                     &sim, &gen, &name)) {
        return -1;
    }
    if (event_init_common(&self->base, sim) < 0) {
        return -1;
    }
    int is_gen = process_is_generator(gen);
    if (is_gen < 0) {
        return -1;
    }
    if (!is_gen) {
        raise_simulation_error_obj(PyUnicode_FromFormat(
            "Process requires a generator, got %s "
            "(did you call a plain function?)", type_short_name(gen)));
        return -1;
    }
    if (name == NULL) {
        name = PyUnicode_FromString("process");
        if (name == NULL) {
            return -1;
        }
    }
    else {
        Py_INCREF(name);
    }
    Py_XSETREF(self->name, name);
    Py_INCREF(gen);
    Py_XSETREF(self->gen, gen);
    Py_CLEAR(self->gen_throw);
    SimulatorObject *simulator = (SimulatorObject *)sim;
    if (PySet_Add(simulator->alive, op) < 0) {
        return -1;
    }
    /* Kick off at the current time (the pure engine's zero Timeout with
     * the process pre-installed as its single waiter). */
    EventObject *start = event_alloc(&Timeout_Type, simulator);
    if (start == NULL) {
        return -1;
    }
    Py_INCREF(Py_None);
    start->value = Py_None;
    Py_INCREF(op);
    start->cb = op;
    double delay = 0.0;
    if (simulator->delay_scale != 1.0) {
        delay *= simulator->delay_scale;
    }
    int rc = sim_heap_push(simulator, simulator->now + delay,
                           (PyObject *)start);
    Py_DECREF(start);
    return rc;
}

static int
process_traverse(PyObject *op, visitproc visit, void *arg)
{
    ProcessObject *self = (ProcessObject *)op;
    Py_VISIT(self->name);
    Py_VISIT(self->gen);
    Py_VISIT(self->gen_throw);
    return event_traverse(op, visit, arg);
}

static int
process_clear(PyObject *op)
{
    ProcessObject *self = (ProcessObject *)op;
    Py_CLEAR(self->name);
    Py_CLEAR(self->gen);
    Py_CLEAR(self->gen_throw);
    return event_clear(op);
}

static void
process_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    (void)process_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyMemberDef process_members[] = {
    {"name", T_OBJECT_EX, offsetof(ProcessObject, name), 0, NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyTypeObject Process_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simmachine._cengine.Process",
    .tp_basicsize = sizeof(ProcessObject),
    .tp_dealloc = process_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Drives a generator of events; completes with its return.",
    .tp_traverse = process_traverse,
    .tp_clear = process_clear,
    .tp_members = process_members,
    .tp_init = process_init,
};

/* ------------------------------------------------------------------ */
/* Simulator. */

static PyObject *
simulator_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    SimulatorObject *self = (SimulatorObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    self->now = 0.0;
    self->delay_scale = 1.0;
    self->alive = PySet_New(NULL);
    if (self->alive == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static int
simulator_init(PyObject *op, PyObject *args, PyObject *kwds)
{
    if ((args != NULL && PyTuple_GET_SIZE(args) != 0)
        || (kwds != NULL && PyDict_GET_SIZE(kwds) != 0)) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    return 0;
}

static void
simulator_drop_heap(SimulatorObject *self)
{
    HeapEntry *heap = self->heap;
    Py_ssize_t len = self->heap_len;
    self->heap = NULL;
    self->heap_len = 0;
    self->heap_cap = 0;
    if (heap != NULL) {
        for (Py_ssize_t i = 0; i < len; i++) {
            Py_DECREF(heap[i].event);
        }
        PyMem_Free(heap);
    }
}

static int
simulator_traverse(PyObject *op, visitproc visit, void *arg)
{
    SimulatorObject *self = (SimulatorObject *)op;
    Py_VISIT(self->alive);
    for (Py_ssize_t i = 0; i < self->heap_len; i++) {
        Py_VISIT(self->heap[i].event);
    }
    return 0;
}

static int
simulator_clear(PyObject *op)
{
    SimulatorObject *self = (SimulatorObject *)op;
    Py_CLEAR(self->alive);
    simulator_drop_heap(self);
    return 0;
}

static void
simulator_dealloc(PyObject *op)
{
    PyObject_GC_UnTrack(op);
    (void)simulator_clear(op);
    Py_TYPE(op)->tp_free(op);
}

static PyObject *
simulator_event(PyObject *op, PyObject *noargs)
{
    return (PyObject *)event_alloc(&Event_Type, (SimulatorObject *)op);
}

static PyObject *
simulator_timeout(PyObject *op, PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames)
{
    SimulatorObject *sim = (SimulatorObject *)op;
    PyObject *delay = NULL;
    PyObject *value = Py_None;
    Py_ssize_t nkw = kwnames != NULL ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs == 1 && nkw == 0) {
        delay = args[0];
    }
    else if (nargs == 2 && nkw == 0) {
        delay = args[0];
        value = args[1];
    }
    else {
        if (nargs >= 1) {
            delay = args[0];
        }
        if (nargs >= 2) {
            value = args[1];
        }
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
            PyObject *arg = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(kw, "delay") == 0
                && delay == NULL) {
                delay = arg;
            }
            else if (PyUnicode_CompareWithASCIIString(kw, "value") == 0) {
                value = arg;
            }
            else {
                delay = NULL;
                break;
            }
        }
        if (delay == NULL || nargs > 2) {
            PyErr_SetString(PyExc_TypeError,
                            "timeout() takes arguments (delay, value=None)");
            return NULL;
        }
    }
    EventObject *ev = event_alloc(&Timeout_Type, sim);
    if (ev == NULL) {
        return NULL;
    }
    if (timeout_setup(ev, sim, delay, value) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
simulator_call_ctor(PyTypeObject *type, PyObject *op, PyObject *arg1,
                    PyObject *arg2)
{
    /* AllOf/AnyOf/Process go through the full constructor: their init
     * runs registration side effects that must match the pure engine. */
    PyObject *obj = type->tp_new(type, NULL, NULL);
    if (obj == NULL) {
        return NULL;
    }
    PyObject *args = arg2 != NULL ? PyTuple_Pack(3, op, arg1, arg2)
                                  : PyTuple_Pack(2, op, arg1);
    if (args == NULL) {
        Py_DECREF(obj);
        return NULL;
    }
    int rc = type->tp_init(obj, args, NULL);
    Py_DECREF(args);
    if (rc < 0) {
        Py_DECREF(obj);
        return NULL;
    }
    return obj;
}

static PyObject *
simulator_all_of(PyObject *op, PyObject *events)
{
    return simulator_call_ctor(&AllOf_Type, op, events, NULL);
}

static PyObject *
simulator_any_of(PyObject *op, PyObject *events)
{
    return simulator_call_ctor(&AnyOf_Type, op, events, NULL);
}

static PyObject *
simulator_process(PyObject *op, PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames)
{
    PyObject *gen = NULL;
    PyObject *name = NULL;
    Py_ssize_t nkw = kwnames != NULL ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs >= 1) {
        gen = args[0];
    }
    if (nargs >= 2) {
        name = args[1];
    }
    for (Py_ssize_t i = 0; i < nkw; i++) {
        PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
        PyObject *arg = args[nargs + i];
        if (PyUnicode_CompareWithASCIIString(kw, "gen") == 0 && gen == NULL) {
            gen = arg;
        }
        else if (PyUnicode_CompareWithASCIIString(kw, "name") == 0
                 && name == NULL) {
            name = arg;
        }
        else {
            gen = NULL;
            break;
        }
    }
    if (gen == NULL || nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "process() takes arguments (gen, name='process')");
        return NULL;
    }
    return simulator_call_ctor(&Process_Type, op, gen, name);
}

static PyObject *
simulator_schedule(PyObject *op, PyObject *const *args, Py_ssize_t nargs)
{
    SimulatorObject *self = (SimulatorObject *)op;
    if (nargs != 2 || !Event_CheckAny(args[0])) {
        PyErr_SetString(PyExc_TypeError,
                        "_schedule() takes arguments (event, delay)");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[1]);
    if (delay == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    if (self->delay_scale != 1.0) {
        delay *= self->delay_scale;
    }
    if (sim_heap_push(self, self->now + delay, args[0]) < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
simulator_step(PyObject *op, PyObject *noargs)
{
    SimulatorObject *self = (SimulatorObject *)op;
    if (self->heap_len == 0) {
        /* heapq.heappop on an empty list */
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    double time;
    PyObject *event = sim_heap_pop(self, &time);
    if (time < self->now) { /* defensive, mirrors the pure engine */
        Py_DECREF(event);
        PyErr_SetString(SimulationError, "time went backwards");
        return NULL;
    }
    self->now = time;
    self->events_processed++;
    int rc = event_dispatch((EventObject *)event);
    Py_DECREF(event);
    if (rc < 0) {
        return NULL;
    }
    Py_RETURN_NONE;
}

/* Fault-site checks at the top of run(): one call per run, never per
 * event, mirroring the pure engine's use of repro.faults. */
static int
simulator_check_faults(SimulatorObject *self)
{
    if (lazy_import_faults() < 0) {
        return -1;
    }
    PyObject *check = PyObject_GetAttr(faults_module, str_check);
    if (check == NULL) {
        return -1;
    }
    PyObject *spec = PyObject_CallOneArg(check, str_sim_run_error);
    if (spec == NULL) {
        Py_DECREF(check);
        return -1;
    }
    if (spec != Py_None) {
        Py_DECREF(spec);
        Py_DECREF(check);
        PyErr_SetString(SimulationError,
                        "injected simulator fault (sim.run.error)");
        return -1;
    }
    Py_DECREF(spec);
    PyObject *burst = PyObject_CallOneArg(check, str_sim_run_noise);
    Py_DECREF(check);
    if (burst == NULL) {
        return -1;
    }
    if (burst != Py_None) {
        PyObject *param = PyObject_GetAttr(burst, str_param);
        Py_DECREF(burst);
        if (param == NULL) {
            return -1;
        }
        double p = PyFloat_AsDouble(param);
        Py_DECREF(param);
        if (p == -1.0 && PyErr_Occurred()) {
            return -1;
        }
        if (p > 0.0) {
            self->delay_scale = p;
        }
        return 0;
    }
    Py_DECREF(burst);
    return 0;
}

/* The hot loop.  `until_obj` is NULL for an unbounded run; on an early
 * stop the caller returns `until_obj` itself, as the pure engine does. */
static int
simulator_run_core(SimulatorObject *self, PyObject *until_obj, int *stopped)
{
    if (simulator_check_faults(self) < 0) {
        return -1;
    }
    double until = 0.0;
    if (until_obj != NULL) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred()) {
            return -1;
        }
    }
    while (self->heap_len > 0) {
        if (until_obj != NULL && self->heap[0].time > until) {
            self->now = until;
            *stopped = 1;
            return 0;
        }
        double time;
        PyObject *event = sim_heap_pop(self, &time);
        self->now = time;
        self->events_processed++;
        int rc = event_dispatch((EventObject *)event);
        Py_DECREF(event);
        if (rc < 0) {
            return -1;
        }
    }
    if (PySet_GET_SIZE(self->alive) > 0) {
        PyObject *names = PySequence_List(self->alive);
        if (names == NULL) {
            return -1;
        }
        Py_ssize_t n = PyList_GET_SIZE(names);
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *item = PyList_GET_ITEM(names, i);
            PyObject *name = PyObject_GetAttr(item, str_name);
            if (name == NULL) {
                Py_DECREF(names);
                return -1;
            }
            PyList_SET_ITEM(names, i, name);
            Py_DECREF(item);
        }
        if (PyList_Sort(names) < 0) {
            Py_DECREF(names);
            return -1;
        }
        PyErr_SetObject(DeadlockError, names);
        Py_DECREF(names);
        return -1;
    }
    return 0;
}

static PyObject *
simulator_run(PyObject *op, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    SimulatorObject *self = (SimulatorObject *)op;
    PyObject *until = NULL;
    Py_ssize_t nkw = kwnames != NULL ? PyTuple_GET_SIZE(kwnames) : 0;
    if (nargs == 1 && nkw == 0) {
        until = args[0];
    }
    else if (nargs == 0 && nkw == 1
             && PyUnicode_CompareWithASCIIString(
                    PyTuple_GET_ITEM(kwnames, 0), "until") == 0) {
        until = args[0];
    }
    else if (nargs != 0 || nkw != 0) {
        PyErr_SetString(PyExc_TypeError,
                        "run() takes at most one argument 'until'");
        return NULL;
    }
    if (until == Py_None) {
        until = NULL;
    }
    int stopped = 0;
    if (simulator_run_core(self, until, &stopped) < 0) {
        return NULL;
    }
    if (stopped) {
        Py_INCREF(until);
        return until;
    }
    return PyFloat_FromDouble(self->now);
}

static PyObject *
simulator_run_all(PyObject *op, PyObject *processes)
{
    SimulatorObject *self = (SimulatorObject *)op;
    PyObject *procs = PySequence_List(processes);
    if (procs == NULL) {
        return NULL;
    }
    int stopped = 0;
    if (simulator_run_core(self, NULL, &stopped) < 0) {
        Py_DECREF(procs);
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(procs);
    PyObject *out = PyList_New(n);
    if (out == NULL) {
        Py_DECREF(procs);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *item = PyList_GET_ITEM(procs, i);
        if (!Event_CheckAny(item)) {
            PyErr_Format(PyExc_TypeError, "run_all() expects Process "
                         "instances, got %s", type_short_name(item));
            goto error;
        }
        EventObject *ev = (EventObject *)item;
        if (ev->exc != NULL) {
            PyObject *name = PyObject_GetAttr(item, str_name);
            if (name == NULL) {
                goto error;
            }
            PyObject *msg = PyUnicode_FromFormat("process %R failed: %R",
                                                 name, ev->exc);
            Py_DECREF(name);
            if (msg == NULL) {
                goto error;
            }
            PyObject *exc = PyObject_CallOneArg(SimulationError, msg);
            Py_DECREF(msg);
            if (exc == NULL) {
                goto error;
            }
            /* raise ... from p._exc */
            Py_INCREF(ev->exc);
            PyException_SetCause(exc, ev->exc);
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
            Py_DECREF(exc);
            goto error;
        }
        if (ev->value == NULL) {
            PyErr_SetString(SimulationError, "event value read before trigger");
            goto error;
        }
        Py_INCREF(ev->value);
        PyList_SET_ITEM(out, i, ev->value);
    }
    Py_DECREF(procs);
    return out;

error:
    Py_DECREF(procs);
    Py_DECREF(out);
    return NULL;
}

static PyMethodDef simulator_methods[] = {
    {"event", (PyCFunction)simulator_event, METH_NOARGS,
     "Create a fresh pending event bound to this simulator."},
    {"timeout", (PyCFunction)(void (*)(void))simulator_timeout,
     METH_FASTCALL | METH_KEYWORDS,
     "Create an event that fires ``delay`` seconds from now."},
    {"all_of", (PyCFunction)simulator_all_of, METH_O,
     "Create a barrier event over ``events``."},
    {"any_of", (PyCFunction)simulator_any_of, METH_O,
     "Create a first-completion event over ``events``."},
    {"process", (PyCFunction)(void (*)(void))simulator_process,
     METH_FASTCALL | METH_KEYWORDS,
     "Start a new process driving ``gen``."},
    {"_schedule", (PyCFunction)(void (*)(void))simulator_schedule,
     METH_FASTCALL, NULL},
    {"step", (PyCFunction)simulator_step, METH_NOARGS,
     "Process the single next event."},
    {"run", (PyCFunction)(void (*)(void))simulator_run,
     METH_FASTCALL | METH_KEYWORDS,
     "Run until the queue drains (or ``until`` simulated seconds)."},
    {"run_all", (PyCFunction)simulator_run_all, METH_O,
     "Run to completion and return each process's return value."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef simulator_members[] = {
    {"now", T_DOUBLE, offsetof(SimulatorObject, now), 0,
     "Current simulated time."},
    {"events_processed", T_LONGLONG,
     offsetof(SimulatorObject, events_processed), 0,
     "Total events retired by this simulator."},
    {"_delay_scale", T_DOUBLE, offsetof(SimulatorObject, delay_scale), 0,
     NULL},
    {"_alive", T_OBJECT_EX, offsetof(SimulatorObject, alive), READONLY,
     NULL},
    {NULL, 0, 0, 0, NULL},
};

static PyObject *
simulator_get_queue_len(PyObject *op, void *closure)
{
    return PyLong_FromSsize_t(((SimulatorObject *)op)->heap_len);
}

static PyGetSetDef simulator_getsets[] = {
    {"_queue_len", simulator_get_queue_len, NULL,
     "Number of scheduled entries (the compiled heap is not a list).",
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Simulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.simmachine._cengine.Simulator",
    .tp_basicsize = sizeof(SimulatorObject),
    .tp_dealloc = simulator_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Event queue and simulated clock.",
    .tp_traverse = simulator_traverse,
    .tp_clear = simulator_clear,
    .tp_methods = simulator_methods,
    .tp_members = simulator_members,
    .tp_getset = simulator_getsets,
    .tp_init = simulator_init,
    .tp_new = simulator_new,
};

/* ------------------------------------------------------------------ */
/* Module init. */

static struct PyModuleDef cengine_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.simmachine._cengine",
    .m_doc = "Compiled discrete-event engine (see repro.simmachine.engine).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__cengine(void)
{
    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL) {
        return NULL;
    }
    SimulationError = PyObject_GetAttrString(errors, "SimulationError");
    DeadlockError = PyObject_GetAttrString(errors, "DeadlockError");
    Py_DECREF(errors);
    if (SimulationError == NULL || DeadlockError == NULL) {
        return NULL;
    }

    if ((str_check = PyUnicode_InternFromString("check")) == NULL
        || (str_param = PyUnicode_InternFromString("param")) == NULL
        || (str_value = PyUnicode_InternFromString("value")) == NULL
        || (str_throw = PyUnicode_InternFromString("throw")) == NULL
        || (str_name = PyUnicode_InternFromString("name")) == NULL
        || (str_sim_run_error =
                PyUnicode_InternFromString("sim.run.error")) == NULL
        || (str_sim_run_noise =
                PyUnicode_InternFromString("sim.run.noise")) == NULL) {
        return NULL;
    }

    Timeout_Type.tp_base = &Event_Type;
    AllOf_Type.tp_base = &Event_Type;
    AnyOf_Type.tp_base = &Event_Type;
    Process_Type.tp_base = &Event_Type;
    if (PyType_Ready(&Event_Type) < 0 || PyType_Ready(&Timeout_Type) < 0
        || PyType_Ready(&AllOf_Type) < 0 || PyType_Ready(&AnyOf_Type) < 0
        || PyType_Ready(&Process_Type) < 0
        || PyType_Ready(&Simulator_Type) < 0) {
        return NULL;
    }

    PyObject *mod = PyModule_Create(&cengine_module);
    if (mod == NULL) {
        return NULL;
    }
    if (PyModule_AddObjectRef(mod, "Event", (PyObject *)&Event_Type) < 0
        || PyModule_AddObjectRef(mod, "Timeout",
                                 (PyObject *)&Timeout_Type) < 0
        || PyModule_AddObjectRef(mod, "AllOf", (PyObject *)&AllOf_Type) < 0
        || PyModule_AddObjectRef(mod, "AnyOf", (PyObject *)&AnyOf_Type) < 0
        || PyModule_AddObjectRef(mod, "Process",
                                 (PyObject *)&Process_Type) < 0
        || PyModule_AddObjectRef(mod, "Simulator",
                                 (PyObject *)&Simulator_Type) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    if (PyModule_AddIntConstant(mod, "ENGINE_API_VERSION", 1) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    PyObject *build_info = Py_BuildValue(
        "{s:s, s:s, s:s}",
        "kind", "c-extension",
#ifdef __VERSION__
        "compiler", "gcc " __VERSION__,
#else
        "compiler", "unknown",
#endif
        "python_abi", PY_VERSION);
    if (build_info == NULL
        || PyModule_AddObject(mod, "BUILD_INFO", build_info) < 0) {
        Py_XDECREF(build_info);
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
