"""Minimal, fast discrete-event simulation core.

The design follows the classic process-interaction style (as popularised by
SimPy) but is trimmed to exactly what the simulated machine needs, because
large experiments push millions of events through this queue:

* :class:`Event` — one-shot triggerable occurrence with callbacks;
* :class:`Timeout` — event scheduled a fixed delay in the future;
* :class:`AllOf` — barrier over a set of events (used for ``waitall``);
* :class:`Process` — a Python generator that ``yield``\\ s events and is
  resumed when they fire; a process is itself an event that triggers on
  completion with the generator's return value;
* :class:`Simulator` — the event queue and clock.

Determinism: ties in time are broken by an insertion sequence number, so a
simulation is bit-for-bit reproducible for a given seed.

Deadlock: when the queue drains while processes are still alive,
:class:`repro.errors.DeadlockError` is raised naming the blocked processes —
this turns hung message-matching bugs into crisp test failures.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from repro import faults
from repro.errors import DeadlockError, SimulationError

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Process", "Simulator"]

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) schedules it
    on the simulator's queue at the current time; when the queue reaches it,
    it becomes *processed* and its callbacks run. Each callback receives the
    event itself.

    Waiter storage is optimized for the overwhelmingly common case of a
    single waiter (a process ``yield``\\ ing the event): the first callback
    lives in the ``_cb`` slot and no list is allocated unless a second
    waiter registers (``callbacks`` stays ``None`` for most events).
    """

    __slots__ = ("sim", "_cb", "callbacks", "_value", "_exc", "processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._cb: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self.processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and sits on (or left) the queue."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def value(self) -> Any:
        """The value the event fired with (only valid once triggered)."""
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` at the current time."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim.now, seq, self))
        return self

    def trigger_at(self, value: Any, delay: float) -> "Event":
        """Trigger with ``value`` after ``delay`` seconds (message arrival)."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if delay < 0:
            raise SimulationError(f"negative trigger delay {delay!r}")
        self._value = value
        sim = self.sim
        scale = sim._delay_scale
        if scale != 1.0:
            delay *= scale
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim.now + delay, seq, self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to throw into waiters."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._exc = exc
        self._value = None
        self.sim._schedule(self, 0.0)
        return self

    def _process(self) -> None:
        self.processed = True
        cb = self._cb
        if cb is not None:
            self._cb = None
            cb(self)
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event is processed.

        If the event was already processed the callback runs immediately —
        this lets a process ``yield`` an event that fired in the past.
        """
        if self.processed:
            cb(self)
        elif self._cb is None:
            self._cb = cb
        elif self.callbacks is None:
            self.callbacks = [cb]
        else:
            self.callbacks.append(cb)


class Timeout(Event):
    """Event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        # Allocation-light fast path: set every slot directly and push the
        # heap entry inline — this constructor runs once per simulated
        # timeout and dominates compute-kernel event traffic.
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.sim = sim
        self._cb = None
        self.callbacks = None
        self._value = value
        self._exc = None
        self.processed = False
        scale = sim._delay_scale
        if scale != 1.0:
            delay *= scale
        sim._seq = seq = sim._seq + 1
        heappush(sim._queue, (sim.now + delay, seq, self))


class AllOf(Event):
    """Fires once every child event has been processed.

    The value is the list of child values in the order given. A failing
    child propagates its exception.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self._children])


class AnyOf(Event):
    """Fires when the first child event is processed.

    The value is ``(index, value)`` of the first completed child. Later
    children completing is fine (their callbacks simply find this event
    already triggered). A failing first child propagates its exception.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=index: self._on_child(i, e))

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed((index, event.value))


class Process(Event):
    """Drives a generator of events; completes with the generator's return.

    The generator may ``yield`` any :class:`Event`; it resumes with the
    event's value (or has the event's exception thrown into it).
    """

    __slots__ = ("name", "_gen", "_resume_cb")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(sim)
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(gen).__name__} "
                f"(did you call a plain function?)"
            )
        self.name = name
        self._gen = gen
        # One bound method reused for every resume — rebinding self._resume
        # per yielded event would allocate a method object each time.
        self._resume_cb = self._resume
        sim._alive.add(self)
        # Kick off at the current time so process start order is
        # deterministic and time-consistent.
        start = Timeout(sim, 0.0)
        start._cb = self._resume_cb

    def _resume(self, event: Event) -> None:
        try:
            if event._exc is not None:
                target = self._gen.throw(event._exc)
            else:
                # event is always triggered here; skip the `value` property's
                # defensive check on this per-event path.
                target = self._gen.send(event._value)
        except StopIteration as stop:
            self.sim._alive.discard(self)
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._alive.discard(self)
            self.fail(exc)
            raise
        # Inlined single-waiter add_callback: the yielded event almost never
        # has another waiter, and this resume step runs once per event.
        if isinstance(target, Event):
            if target.processed:
                self._resume(target)
            elif target._cb is None:
                target._cb = self._resume_cb
            else:
                target.add_callback(self._resume_cb)
            return
        self.sim._alive.discard(self)
        exc = SimulationError(
            f"process {self.name!r} yielded {type(target).__name__}, "
            "expected an Event"
        )
        self.fail(exc)
        raise exc


class Simulator:
    """Event queue and simulated clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._alive: set[Process] = set()
        self.events_processed = 0
        # Fault injection ("sim.run.noise") scales every event delay to
        # model a machine-wide noise burst; 1.0 outside chaos runs.
        self._delay_scale = 1.0

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if self._delay_scale != 1.0:
            delay *= self._delay_scale
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    def event(self) -> Event:
        """Create a fresh pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a barrier event over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a first-completion event over ``events``."""
        return AnyOf(self, events)

    def process(
        self, gen: Generator[Event, Any, Any], name: str = "process"
    ) -> Process:
        """Start a new process driving ``gen``."""
        return Process(self, gen, name)

    # -- execution --------------------------------------------------------

    def step(self) -> None:
        """Process the single next event."""
        time, _seq, event = heapq.heappop(self._queue)
        if time < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = time
        self.events_processed += 1
        event._process()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or ``until`` simulated seconds).

        Returns the final clock value. Raises :class:`DeadlockError` if the
        queue drains while processes are still alive, and
        :class:`SimulationError` if a process crashed.
        """
        if faults.check("sim.run.error") is not None:
            raise SimulationError("injected simulator fault (sim.run.error)")
        burst = faults.check("sim.run.noise")
        if burst is not None and burst.param > 0:
            self._delay_scale = burst.param
        # Hot loop: equivalent to `while queue: self.step()` with the method
        # call and bounds checks peeled out — this loop retires every event
        # of every simulation, so each saved bytecode is measurable.
        # The `_process` body is inlined below (no Event subclass overrides
        # it): one method call per event is the single biggest remaining
        # per-event cost.
        queue = self._queue
        if until is None:
            while queue:
                time, _seq, event = heappop(queue)
                self.now = time
                self.events_processed += 1
                event.processed = True
                cb = event._cb
                if cb is not None:
                    event._cb = None
                    cb(event)
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
        else:
            while queue:
                if queue[0][0] > until:
                    self.now = until
                    return until
                time, _seq, event = heappop(queue)
                self.now = time
                self.events_processed += 1
                event.processed = True
                cb = event._cb
                if cb is not None:
                    event._cb = None
                    cb(event)
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
        if self._alive:
            raise DeadlockError(sorted(p.name for p in self._alive))
        return self.now

    def run_all(self, processes: Iterable[Process]) -> list[Any]:
        """Run to completion and return each process's return value."""
        procs = list(processes)
        self.run()
        out = []
        for p in procs:
            if p._exc is not None:
                raise SimulationError(
                    f"process {p.name!r} failed: {p._exc!r}"
                ) from p._exc
            out.append(p.value)
        return out
