"""Machine configuration objects and presets.

The main preset, :func:`ibm_sp_argonne`, approximates the machine used in
the paper: the Argonne IBM SP with 80 × 120 MHz P2SC processors connected
by a multistage switch. Absolute constants are calibrated to land simulated
NPB times in the same order of magnitude as 2002 hardware; the reproduction
targets the *shape* of the paper's results (see DESIGN.md §2), which depends
on the ratios between cache levels, memory, network latency and flop rate —
not on any single absolute value.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "AnalyticMachineProfile",
    "CacheLevelConfig",
    "ProcessorConfig",
    "NetworkConfig",
    "MachineConfig",
    "commodity_cluster_2002",
    "ibm_sp_argonne",
    "linear_test_machine",
]

KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level: capacity and per-byte service time."""

    name: str
    capacity_bytes: int
    byte_time: float

    def __post_init__(self) -> None:
        check_positive(f"{self.name} capacity_bytes", self.capacity_bytes)
        check_positive(f"{self.name} byte_time", self.byte_time)


@dataclass(frozen=True)
class ProcessorConfig:
    """A processor: sustained flop rate plus its memory hierarchy."""

    clock_hz: float
    flops_per_cycle: float
    efficiency: float
    cache_levels: tuple[CacheLevelConfig, ...]
    memory_byte_time: float
    write_factor: float = 1.0

    def __post_init__(self) -> None:
        check_positive("clock_hz", self.clock_hz)
        check_positive("flops_per_cycle", self.flops_per_cycle)
        check_positive("efficiency", self.efficiency)
        if self.efficiency > 1.0:
            raise ConfigurationError(
                f"efficiency must be <= 1, got {self.efficiency}"
            )
        if not self.cache_levels:
            raise ConfigurationError("processor needs >= 1 cache level")
        check_positive("memory_byte_time", self.memory_byte_time)

    @property
    def flop_time(self) -> float:
        """Sustained seconds per floating-point operation."""
        return 1.0 / (self.clock_hz * self.flops_per_cycle * self.efficiency)

    @property
    def peak_flops(self) -> float:
        """Peak flop/s (ignores efficiency)."""
        return self.clock_hz * self.flops_per_cycle


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect: per-message latency, bandwidths and contention.

    Attributes
    ----------
    latency:
        Base end-to-end latency per message (seconds).
    byte_time:
        Seconds per byte of wire transfer (1 / link bandwidth).
    injection_byte_time:
        Seconds per byte to push a message through the sender's adapter;
        the adapter serializes its rank's sends.
    per_message_overhead:
        Fixed software send overhead per message (seconds).
    contention_coeff:
        Each message's latency is multiplied by
        ``1 + contention_coeff * inflight`` where ``inflight`` counts
        messages injected machine-wide within ``drain_window`` seconds.
        This is the destructive-coupling mechanism for message-dominated
        kernels (paper §4.1.1).
    drain_window:
        How long an injected message contributes to contention (seconds).
    """

    latency: float
    byte_time: float
    injection_byte_time: float
    per_message_overhead: float
    contention_coeff: float = 0.0
    drain_window: float = 0.0

    def __post_init__(self) -> None:
        check_positive("latency", self.latency)
        check_positive("byte_time", self.byte_time)
        check_positive("injection_byte_time", self.injection_byte_time)
        check_non_negative("per_message_overhead", self.per_message_overhead)
        check_non_negative("contention_coeff", self.contention_coeff)
        check_non_negative("drain_window", self.drain_window)


@dataclass(frozen=True)
class AnalyticMachineProfile:
    """Flattened machine parameters, as consumed by closed-form models.

    :mod:`repro.analytic` predicts kernel times without running the event
    loop, and the descriptor extraction lives *here* (next to the configs it
    flattens) so the analytic package depends only on this module — never on
    :mod:`repro.simmachine.engine` (enforced by analysis rule REP008).
    """

    flop_time: float
    #: ``(name, capacity_bytes, byte_time)`` innermost first — the exact
    #: tuple shape :class:`repro.simmachine.memory.MemoryHierarchy` accepts.
    level_specs: tuple[tuple[str, int, float], ...]
    memory_byte_time: float
    write_factor: float
    latency: float
    byte_time: float
    injection_byte_time: float
    per_message_overhead: float
    contention_coeff: float
    drain_window: float
    noise_cv: float
    noise_floor: float

    @property
    def expected_floor_jitter(self) -> float:
        """Mean additive jitter per work call (uniform on [0, floor))."""
        return 0.5 * self.noise_floor


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: processors + network + noise level."""

    name: str
    processor: ProcessorConfig
    network: NetworkConfig
    max_procs: int
    noise_cv: float = 0.0
    #: Per-work-call additive OS jitter: uniform on [0, noise_floor) seconds.
    #: Negligible for long kernels; dominant scatter source for class-S-sized
    #: ones (the paper: "the predicted execution time is so small, that
    #: measuring errors get magnified quickly").
    noise_floor: float = 0.0

    def __post_init__(self) -> None:
        check_positive("max_procs", self.max_procs)
        check_non_negative("noise_cv", self.noise_cv)
        check_non_negative("noise_floor", self.noise_floor)
        if self.noise_cv >= 1.0:
            raise ConfigurationError(
                f"noise_cv must be < 1 for a sane jitter model, got {self.noise_cv}"
            )

    def with_(self, **overrides: object) -> "MachineConfig":
        """Return a copy with fields replaced (config sweeps, ablations)."""
        return replace(self, **overrides)

    def analytic_profile(self) -> AnalyticMachineProfile:
        """Extract the flat parameter set the analytic tier consumes."""
        proc = self.processor
        net = self.network
        return AnalyticMachineProfile(
            flop_time=proc.flop_time,
            level_specs=tuple(
                (lv.name, lv.capacity_bytes, lv.byte_time)
                for lv in proc.cache_levels
            ),
            memory_byte_time=proc.memory_byte_time,
            write_factor=proc.write_factor,
            latency=net.latency,
            byte_time=net.byte_time,
            injection_byte_time=net.injection_byte_time,
            per_message_overhead=net.per_message_overhead,
            contention_coeff=net.contention_coeff,
            drain_window=net.drain_window,
            noise_cv=self.noise_cv,
            noise_floor=self.noise_floor,
        )


def ibm_sp_argonne() -> MachineConfig:
    """Approximation of the Argonne IBM SP used in the paper.

    120 MHz P2SC CPUs (4 flops/cycle peak = 480 Mflop/s; ~12 % sustained on
    NPB-like code), a 128 KB L1 data cache, and an 8 MiB second-level
    working store (the real P2SC had no L2; the paper's analysis requires a
    two-level hierarchy whose outer capacity separates the class-W and
    class-A per-processor working sets — see DESIGN.md "Key
    substitutions"). SP switch: ~30 µs MPI latency, ~100 MB/s per-link
    bandwidth, with a contention term that couples back-to-back kernels'
    message bursts.
    """
    return MachineConfig(
        name="ibm-sp-argonne",
        processor=ProcessorConfig(
            clock_hz=120e6,
            flops_per_cycle=4.0,
            efficiency=0.12,
            cache_levels=(
                CacheLevelConfig("L1", 128 * KiB, byte_time=0.8e-9),
                CacheLevelConfig("L2", 8 * MiB, byte_time=3.2e-9),
            ),
            memory_byte_time=8.0e-9,
            write_factor=1.3,
        ),
        network=NetworkConfig(
            latency=30e-6,
            byte_time=1.0e-8,
            injection_byte_time=4.0e-9,
            per_message_overhead=8e-6,
            contention_coeff=0.02,
            drain_window=2e-3,
        ),
        max_procs=80,
        noise_cv=0.03,
        noise_floor=8e-5,
    )


def commodity_cluster_2002() -> MachineConfig:
    """A 2002-era commodity Linux cluster, for cross-machine studies.

    Faster scalar processors than the SP's P2SC (1 GHz class) with a small
    on-die L2, but commodity Fast-Ethernet-class interconnect: an order of
    magnitude worse latency and bandwidth. The paper's §1 motivates exactly
    this comparison — "predict the relative performance of different
    systems used to execute an application" — and the two presets disagree
    on which kernels dominate (compute-bound vs communication-bound), so
    their coupling values differ measurably.
    """
    return MachineConfig(
        name="commodity-cluster-2002",
        processor=ProcessorConfig(
            clock_hz=1.0e9,
            flops_per_cycle=1.0,
            efficiency=0.25,
            cache_levels=(
                CacheLevelConfig("L1", 16 * KiB, byte_time=0.5e-9),
                CacheLevelConfig("L2", 256 * KiB, byte_time=2.0e-9),
            ),
            memory_byte_time=5.0e-9,
            write_factor=1.3,
        ),
        network=NetworkConfig(
            latency=120e-6,
            byte_time=1.0e-7,          # ~10 MB/s effective
            injection_byte_time=2.0e-8,
            per_message_overhead=25e-6,
            contention_coeff=0.05,
            drain_window=5e-3,
        ),
        max_procs=64,
        noise_cv=0.05,
        noise_floor=1.5e-4,
    )


def linear_test_machine(max_procs: int = 64) -> MachineConfig:
    """A machine with no interaction mechanisms at all.

    No contention, no noise, and an enormous L1 so every touch after the
    first is a hit regardless of ordering. On this machine
    ``P_ij == P_i + P_j`` holds exactly for compute-only kernels, which the
    property-based tests use to pin down the coupling algebra
    (``C_S == 1`` and coupling prediction == summation == actual).
    """
    return MachineConfig(
        name="linear-test",
        processor=ProcessorConfig(
            clock_hz=1e9,
            flops_per_cycle=1.0,
            efficiency=1.0,
            cache_levels=(
                CacheLevelConfig("L1", 1 << 40, byte_time=1e-12),
            ),
            memory_byte_time=1e-11,
            write_factor=1.0,
        ),
        network=NetworkConfig(
            latency=1e-6,
            byte_time=1e-9,
            injection_byte_time=1e-10,
            per_message_overhead=0.0,
            contention_coeff=0.0,
            drain_window=0.0,
        ),
        max_procs=max_procs,
        noise_cv=0.0,
    )
