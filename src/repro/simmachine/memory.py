"""Region-granularity cache / memory-hierarchy model.

Kernels declare named :class:`DataRegion`\\ s (arrays) that they stream
through once per invocation. The hierarchy tracks, per cache level, how many
bytes of each region are resident, with LRU replacement at region
granularity: touching a region makes it most-recently-used and resident up
to the level's capacity, evicting bytes from the least-recently-used
regions.

This is deliberately coarser than a line-accurate cache simulator, but it
captures exactly the phenomenon the paper's coupling parameter measures:

* a kernel re-touching the region a *preceding* kernel just produced finds
  it (partially) resident → **constructive coupling** (``C < 1``);
* two kernels whose combined footprint exceeds a level evict each other's
  data relative to running alone → **destructive coupling** (``C > 1``);
* how much of the region is still resident depends on capacity, so the
  coupling value *transitions* as the per-processor working set crosses
  each level's capacity while the problem size or processor count scales —
  the paper's "finite number of major value changes".

Costs are per-byte service times per level, so a touch's cost is::

    sum(bytes_served_by_level * level.byte_time) + bytes_from_memory * memory_byte_time

Writes pay ``write_factor`` on bytes that miss all levels (write-allocate
traffic to memory).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.util.validation import check_non_negative, check_positive

__all__ = ["DataRegion", "TouchResult", "MemoryHierarchy"]


@dataclass(frozen=True)
class DataRegion:
    """A named, fixed-size block of application data (one array)."""

    name: str
    nbytes: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("DataRegion needs a non-empty name")
        check_non_negative("DataRegion.nbytes", self.nbytes)


@dataclass(frozen=True)
class TouchResult:
    """Outcome of streaming through a region once.

    Attributes
    ----------
    time:
        Simulated seconds spent on memory traffic for this touch.
    served_by_level:
        Bytes served by each cache level, innermost first.
    from_memory:
        Bytes that missed every level (fetched from main memory).
    total:
        Total bytes touched.
    """

    time: float
    served_by_level: tuple[int, ...]
    from_memory: int
    total: int

    @property
    def hit_fraction(self) -> float:
        """Fraction of touched bytes served by any cache level."""
        if self.total == 0:
            return 1.0
        return 1.0 - self.from_memory / self.total


class _Level:
    """One cache level: LRU-ordered residency map (first=LRU, last=MRU)."""

    __slots__ = ("name", "capacity", "byte_time", "resident", "occupied")

    def __init__(self, name: str, capacity: int, byte_time: float) -> None:
        self.name = name
        self.capacity = int(capacity)
        self.byte_time = byte_time
        self.resident: OrderedDict[str, int] = OrderedDict()
        self.occupied = 0

    def resident_bytes(self, region_name: str) -> int:
        return self.resident.get(region_name, 0)

    def install(self, region_name: str, nbytes: int) -> None:
        """Make ``nbytes`` of the region resident as MRU, evicting LRU bytes."""
        nbytes = min(nbytes, self.capacity)
        old = self.resident.pop(region_name, 0)
        self.occupied -= old
        # Evict from the cold end until the new region fits.
        while self.occupied + nbytes > self.capacity and self.resident:
            victim, vbytes = next(iter(self.resident.items()))
            need = self.occupied + nbytes - self.capacity
            if vbytes <= need:
                self.resident.popitem(last=False)
                self.occupied -= vbytes
            else:
                self.resident[victim] = vbytes - need
                self.occupied -= need
        self.resident[region_name] = nbytes
        self.occupied += nbytes

    def flush(self) -> None:
        self.resident.clear()
        self.occupied = 0


class MemoryHierarchy:
    """A stack of cache levels in front of main memory, for one processor."""

    def __init__(
        self,
        level_specs: Sequence[tuple[str, int, float]],
        memory_byte_time: float,
        write_factor: float = 1.0,
    ) -> None:
        """
        Parameters
        ----------
        level_specs:
            ``(name, capacity_bytes, byte_time)`` per level, innermost first.
            Capacities must be strictly increasing outward.
        memory_byte_time:
            Seconds per byte served from main memory. Must exceed every
            level's ``byte_time``.
        write_factor:
            Multiplier on the memory cost of bytes *written* that miss all
            levels (write-allocate + write-back traffic).
        """
        if not level_specs:
            raise ConfigurationError("MemoryHierarchy needs >= 1 cache level")
        self.levels: list[_Level] = []
        prev_cap = 0
        prev_bt = 0.0
        for name, cap, bt in level_specs:
            check_positive(f"{name} capacity", cap)
            check_positive(f"{name} byte_time", bt)
            if cap <= prev_cap:
                raise ConfigurationError(
                    "cache capacities must increase outward "
                    f"({name}: {cap} <= {prev_cap})"
                )
            if bt <= prev_bt:
                raise ConfigurationError(
                    "cache byte times must increase outward "
                    f"({name}: {bt} <= {prev_bt})"
                )
            self.levels.append(_Level(name, cap, bt))
            prev_cap, prev_bt = cap, bt
        check_positive("memory_byte_time", memory_byte_time)
        if memory_byte_time <= prev_bt:
            raise ConfigurationError(
                "memory_byte_time must exceed the outermost cache byte_time"
            )
        self.memory_byte_time = memory_byte_time
        self.write_factor = check_positive("write_factor", write_factor)
        # Aggregate statistics (flushed into the obs registry per run).
        self.touches = 0
        self.bytes_hit = 0
        self.bytes_from_memory = 0

    # -- queries ----------------------------------------------------------

    def resident_bytes(self, level: int, region_name: str) -> int:
        """Bytes of ``region_name`` resident at cache level ``level``."""
        return self.levels[level].resident_bytes(region_name)

    @property
    def capacities(self) -> tuple[int, ...]:
        """Capacity of each level, innermost first."""
        return tuple(lv.capacity for lv in self.levels)

    # -- operations --------------------------------------------------------

    def touch(
        self,
        region: DataRegion,
        nbytes: Optional[int] = None,
        write: bool = False,
    ) -> TouchResult:
        """Stream through ``nbytes`` of ``region`` (default: all of it).

        Returns the traffic cost and updates residency at every level.
        """
        total = region.nbytes if nbytes is None else int(nbytes)
        if total < 0:
            raise ConfigurationError(f"touch of negative size {total}")
        total = min(total, region.nbytes)
        served: list[int] = []
        covered = 0  # bytes already served by an inner level
        time = 0.0
        for level in self.levels:
            res = min(level.resident_bytes(region.name), total)
            here = max(0, res - covered)
            served.append(here)
            time += here * level.byte_time
            covered = max(covered, res)
        from_memory = total - covered
        mem_time = from_memory * self.memory_byte_time
        if write:
            mem_time *= self.write_factor
        time += mem_time
        # The touched bytes become the hottest data at every level.
        for level in self.levels:
            level.install(region.name, total)
        self.touches += 1
        self.bytes_hit += covered
        self.bytes_from_memory += from_memory
        return TouchResult(
            time=time,
            served_by_level=tuple(served),
            from_memory=from_memory,
            total=total,
        )

    def flush(self) -> None:
        """Invalidate everything (cold caches)."""
        for level in self.levels:
            level.flush()

    def disturb(self, nbytes: int) -> None:
        """Model unrelated code streaming ``nbytes`` through the hierarchy.

        Used by the measurement harness to re-create the application context
        around an isolated kernel loop (the paper's protocol runs the kernel
        loop *inside* the application). Evicts LRU data as a real
        interfering working set would, without costing simulated time.
        """
        check_non_negative("disturb nbytes", nbytes)
        if nbytes == 0:
            return
        scratch = DataRegion("__disturbance__", nbytes)
        for level in self.levels:
            level.install(scratch.name, nbytes)
