"""Interconnect timing model.

The model is timestamp-based rather than resource-based for speed: the
simulated MPI layer asks :meth:`NetworkModel.send_timing` for the two times
that matter — when the *sender* is free again (injection complete; sends are
buffered) and when the message *arrives* at the destination — and turns them
into engine events itself.

Three cost components:

* **injection** — the sender's adapter serializes its own messages
  (``per_message_overhead + nbytes * injection_byte_time``, starting no
  earlier than the adapter is free);
* **transfer** — ``latency * (1 + contention_coeff * inflight) + nbytes *
  byte_time``;
* **contention** — ``inflight`` counts messages injected machine-wide in
  the last ``drain_window`` seconds. Back-to-back kernels therefore see
  each other's message backlog, which running each kernel alone (with the
  harness draining between iterations) does not — the destructive coupling
  mechanism for communication-dominated configurations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.simmachine.machine import NetworkConfig

__all__ = ["MessageTiming", "NetworkModel"]


@dataclass(frozen=True)
class MessageTiming:
    """Times computed for one message."""

    start: float        # when injection began (adapter became available)
    sender_done: float  # when the sender may continue (buffered send)
    arrival: float      # when the payload is available at the destination
    contention: float   # the latency multiplier that was applied, >= 1


class NetworkModel:
    """Shared network state for one simulated machine instance."""

    def __init__(self, config: NetworkConfig, nprocs: int) -> None:
        if nprocs < 1:
            raise CommunicationError(f"network needs >= 1 proc, got {nprocs}")
        self.config = config
        self.nprocs = nprocs
        self._nic_free = [0.0] * nprocs
        self._inflight: deque[float] = deque()
        # Aggregate statistics (read by the profiler).
        self.messages_sent = 0
        self.bytes_sent = 0
        self.max_inflight = 0

    # -- internal ----------------------------------------------------------

    def _current_inflight(self, now: float) -> int:
        window = self.config.drain_window
        if window <= 0.0:
            return 0
        horizon = now - window
        inflight = self._inflight
        while inflight and inflight[0] < horizon:
            inflight.popleft()
        return len(inflight)

    # -- API used by simmpi --------------------------------------------------

    def send_timing(
        self, src: int, dst: int, nbytes: int, now: float, messages: int = 1
    ) -> MessageTiming:
        """Compute the timing of one message injected at simulated time ``now``.

        ``messages > 1`` models a *burst* of that many back-to-back small
        messages totalling ``nbytes`` (the LU wavefront sends one burst per
        grid plane instead of one engine event per 5-word message): the
        burst pays the per-message overhead ``messages`` times and counts
        ``messages`` times toward contention, but is simulated as a single
        event.
        """
        if not (0 <= src < self.nprocs and 0 <= dst < self.nprocs):
            raise CommunicationError(
                f"message {src}->{dst} outside 0..{self.nprocs - 1}"
            )
        if nbytes < 0:
            raise CommunicationError(f"negative message size {nbytes}")
        if messages < 1:
            raise CommunicationError(f"message burst count must be >= 1, got {messages}")
        cfg = self.config
        start = max(now, self._nic_free[src])
        inject = messages * cfg.per_message_overhead + nbytes * cfg.injection_byte_time
        sender_done = start + inject
        self._nic_free[src] = sender_done
        inflight = self._current_inflight(start)
        contention = 1.0 + cfg.contention_coeff * inflight
        if src == dst:
            # Self-message: no wire, just a copy through the adapter.
            arrival = sender_done
        else:
            arrival = sender_done + cfg.latency * contention + nbytes * cfg.byte_time
        if cfg.drain_window > 0.0:
            self._inflight.extend([start] * messages)
            if len(self._inflight) > self.max_inflight:
                self.max_inflight = len(self._inflight)
        self.messages_sent += messages
        self.bytes_sent += nbytes
        return MessageTiming(
            start=start,
            sender_done=sender_done,
            arrival=arrival,
            contention=contention,
        )

    def drain(self) -> None:
        """Forget the contention backlog (measurement-harness flush).

        Called between timing-loop iterations so an isolated kernel never
        sees another kernel's messages — mirroring that on the real machine
        the instrumentation barrier lets the switch quiesce.
        """
        self._inflight.clear()
