"""Deterministic, seeded load-imbalance noise.

Real machines jitter: OS daemons, TLB refills, memory-bank conflicts. The
paper averages each measurement over 50 runs for exactly this reason, and
attributes part of the destructive coupling at small problem sizes to load
imbalance amplified by synchronization (§4.1.1).

Each rank of each run gets its own counter-based stream derived from
``(seed, run_id, rank)``, so:

* the same run replayed with the same seed is bit-for-bit identical;
* different measurement runs (different ``run_id``) see independent noise,
  making the harness's averaging meaningful;
* noise draws do not depend on event interleaving (each rank owns a stream).

Jitter is a multiplicative lognormal factor with unit mean and coefficient
of variation ``cv``.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from repro.util.validation import check_non_negative

__all__ = ["NoiseModel", "RankNoise"]


class RankNoise:
    """Per-rank jitter stream. ``factor()`` has mean 1 and configured cv."""

    __slots__ = ("_rng", "_sigma", "_mu", "cv", "draws")

    def __init__(self, seed_material: tuple[int, ...], cv: float) -> None:
        self.cv = cv
        self.draws = 0
        if cv > 0.0:
            self._rng = np.random.Generator(np.random.PCG64(seed_material))
            # Lognormal with E[X] = 1: sigma^2 = ln(1 + cv^2), mu = -sigma^2/2.
            sigma2 = math.log1p(cv * cv)
            self._sigma = math.sqrt(sigma2)
            self._mu = -0.5 * sigma2
        else:
            self._rng = None
            self._sigma = 0.0
            self._mu = 0.0

    def factor(self) -> float:
        """Next multiplicative jitter factor (exactly 1.0 when cv == 0)."""
        if self._rng is None:
            return 1.0
        self.draws += 1
        return math.exp(self._mu + self._sigma * self._rng.standard_normal())

    def floor_jitter(self, scale: float) -> float:
        """Additive jitter uniform on [0, scale) seconds.

        With no stream configured (cv == 0) the deterministic midpoint is
        returned so that turning the floor on without cv stays reproducible.
        """
        if scale <= 0.0:
            return 0.0
        if self._rng is None:
            return 0.5 * scale
        self.draws += 1
        return scale * self._rng.random()


class NoiseModel:
    """Factory of per-(run, rank) jitter streams."""

    def __init__(self, seed: int, cv: float) -> None:
        check_non_negative("noise cv", cv)
        self.seed = int(seed)
        self.cv = float(cv)

    def rank_stream(self, run_id: str, rank: int) -> RankNoise:
        """Create the deterministic stream for ``rank`` of run ``run_id``."""
        run_hash = zlib.crc32(run_id.encode("utf-8"))
        return RankNoise((self.seed, run_hash, rank), self.cv)
