"""The assembled machine and the per-rank execution context.

A :class:`Machine` instance is one *run*: it owns a fresh simulator clock,
per-rank memory hierarchies, the shared network, and per-rank noise streams.
Kernel programs are generator functions taking a :class:`RankContext`; they
express work with :meth:`RankContext.work` (compute + memory traffic, a
single engine event) and communicate through the MPI-like layer attached as
``ctx.comm`` (see :func:`repro.simmpi.attach_world`).

Counters are accumulated per rank per *label* (the currently executing
kernel's name), which is what the profiler and cache-miss metrics read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence, Union

from repro import obs
from repro.errors import ConfigurationError, SimulationError
from repro.simmachine._backend import Event, Process, Simulator
from repro.simmachine.machine import MachineConfig
from repro.simmachine.memory import DataRegion, MemoryHierarchy
from repro.simmachine.network import NetworkModel
from repro.simmachine.noise import NoiseModel
from repro.simmachine.trace import Trace

__all__ = ["KernelCounters", "Machine", "RankContext"]

#: A kernel program: per-rank generator of engine events.
ProgramFn = Callable[["RankContext"], Generator[Event, Any, Any]]


@dataclass
class KernelCounters:
    """Per-(rank, label) activity counters."""

    compute_time: float = 0.0
    memory_time: float = 0.0
    flops: float = 0.0
    bytes_touched: int = 0
    bytes_from_memory: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    wait_time: float = 0.0

    @property
    def busy_time(self) -> float:
        """Compute + memory time (excludes communication waits)."""
        return self.compute_time + self.memory_time

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate another counter set into this one."""
        self.compute_time += other.compute_time
        self.memory_time += other.memory_time
        self.flops += other.flops
        self.bytes_touched += other.bytes_touched
        self.bytes_from_memory += other.bytes_from_memory
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.wait_time += other.wait_time


class RankContext:
    """Execution context handed to a kernel program on one rank."""

    def __init__(self, machine: "Machine", rank: int) -> None:
        self.machine = machine
        self.rank = rank
        self.sim: Simulator = machine.sim
        self.memory: MemoryHierarchy = machine.memories[rank]
        self._noise = machine.noise_streams[rank]
        self.label = "_"
        self.comm = None  # attached by repro.simmpi.attach_world
        self.counters: dict[str, KernelCounters] = {}

    # -- bookkeeping -------------------------------------------------------

    def set_label(self, label: str) -> None:
        """Name the kernel that subsequent activity is charged to."""
        self.label = label
        if self.machine.trace is not None:
            self.machine.trace.add(self.sim.now, self.rank, label, "phase")

    def _counters(self) -> KernelCounters:
        c = self.counters.get(self.label)
        if c is None:
            c = self.counters[self.label] = KernelCounters()
        return c

    # -- work --------------------------------------------------------------

    def compute_seconds(self, flops: float, jitter: bool = True) -> float:
        """Account ``flops`` of computation; return the (jittered) seconds.

        Does not advance simulated time — combine the returned seconds into
        a single ``sim.timeout`` (or use :meth:`work`). Splitting accounting
        from waiting lets pipelined kernels charge per-plane compute while
        keeping the engine event count low.
        """
        if flops < 0:
            raise SimulationError(f"negative flops {flops!r}")
        seconds = flops * self.machine.config.processor.flop_time
        if jitter:
            seconds *= self._noise.factor()
            seconds += self._noise.floor_jitter(self.machine.config.noise_floor)
        c = self._counters()
        c.compute_time += seconds
        c.flops += flops
        return seconds

    def touch_regions(
        self, regions: Sequence[tuple[DataRegion, Optional[int], bool]]
    ) -> float:
        """Stream through ``regions``; account and return the memory seconds.

        ``regions`` is a sequence of ``(region, nbytes_or_None, write)``.
        Residency is updated immediately (at the *current* simulated time),
        which is the intended semantics: a kernel's data is considered hot
        as soon as the kernel runs.
        """
        mem_time = 0.0
        c = self._counters()
        for region, nbytes, write in regions:
            result = self.memory.touch(region, nbytes, write=write)
            mem_time += result.time
            c.bytes_touched += result.total
            c.bytes_from_memory += result.from_memory
        c.memory_time += mem_time
        return mem_time

    def work(
        self,
        flops: float = 0.0,
        regions: Sequence[tuple[DataRegion, Optional[int], bool]] = (),
        jitter: bool = True,
    ) -> Event:
        """One unit of local work: ``flops`` plus streaming the ``regions``.

        Returns a single engine event that fires when the work is done; the
        compute part is scaled by this rank's jitter stream (unless
        ``jitter=False``, used by the harness's calibration runs).
        """
        compute = self.compute_seconds(flops, jitter)
        mem_time = self.touch_regions(regions)
        if self.machine.trace is not None:
            self.machine.trace.add(
                self.sim.now, self.rank, self.label, "compute",
                {"flops": flops, "mem_time": mem_time},
            )
        return self.sim.timeout(compute + mem_time)

    def idle(self, seconds: float) -> Event:
        """Pure delay (no counters) — used by harness padding."""
        return self.sim.timeout(seconds)

    # -- accounting hooks used by simmpi ------------------------------------

    def account_send(self, nbytes: int) -> None:
        c = self._counters()
        c.messages_sent += 1
        c.bytes_sent += nbytes

    def account_wait(self, seconds: float) -> None:
        if seconds > 0:
            self._counters().wait_time += seconds


class Machine:
    """One simulated run of a parallel machine.

    Parameters
    ----------
    config:
        Hardware description (see :mod:`repro.simmachine.machine`).
    nprocs:
        Number of ranks; must not exceed ``config.max_procs``.
    seed:
        Base seed for the noise model.
    run_id:
        Distinguishes noise streams between runs of the same seed (the
        measurement harness uses one id per repetition).
    trace:
        Event tracing control: ``False`` (off, the default), ``True``
        (unbounded trace — debugging only), an ``int`` N (bounded ring
        buffer of the newest N records, safe for long campaigns), or an
        existing :class:`Trace` to append into.
    """

    def __init__(
        self,
        config: MachineConfig,
        nprocs: int,
        seed: int = 0,
        run_id: str = "run",
        trace: Union[bool, int, Trace] = False,
    ) -> None:
        if nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
        if nprocs > config.max_procs:
            raise ConfigurationError(
                f"machine {config.name!r} has {config.max_procs} procs, "
                f"requested {nprocs}"
            )
        self.config = config
        self.nprocs = nprocs
        self.seed = seed
        self.run_id = run_id
        self.sim = Simulator()
        self.network = NetworkModel(config.network, nprocs)
        proc = config.processor
        level_specs = [
            (lv.name, lv.capacity_bytes, lv.byte_time) for lv in proc.cache_levels
        ]
        self.memories = [
            MemoryHierarchy(level_specs, proc.memory_byte_time, proc.write_factor)
            for _ in range(nprocs)
        ]
        noise = NoiseModel(seed, config.noise_cv)
        self.noise_streams = [noise.rank_stream(run_id, r) for r in range(nprocs)]
        if isinstance(trace, Trace):
            self.trace: Optional[Trace] = trace
        elif trace is True:
            self.trace = Trace()
        elif isinstance(trace, int) and not isinstance(trace, bool) and trace > 0:
            self.trace = Trace(max_records=trace)
        else:
            self.trace = None
        self._flushed: dict[str, int] = {}
        self.contexts = [RankContext(self, r) for r in range(nprocs)]

    # -- running programs ----------------------------------------------------

    def launch(self, program: ProgramFn, name: str = "rank") -> list[Process]:
        """Start ``program`` on every rank; returns the rank processes."""
        return [
            self.sim.process(program(ctx), name=f"{name}{ctx.rank}")
            for ctx in self.contexts
        ]

    def run(self, program: ProgramFn, name: str = "rank") -> float:
        """Launch on all ranks, run to completion, return elapsed sim time.

        When observability is enabled, the run's event/message/cache/noise
        totals are flushed into the global obs registry afterwards — one
        lock acquisition per counter per *run*, never per event, so the
        hot simulation loop stays uninstrumented. The same discipline
        applies to profiling: one ``obs.tag`` per run (a single pointer
        check when no profiler is installed, REP009) labels every sample
        taken inside the engine loop with the simulated program's name.
        """
        start = self.sim.now
        events_before = self.sim.events_processed
        procs = self.launch(program, name)
        with obs.tag(f"sim.run:{name}"):
            self.sim.run_all(procs)
        if obs.enabled():
            self._flush_obs(events_before)
        return self.sim.now - start

    def _flush_obs(self, events_before: int) -> None:
        """Accumulate this run's activity totals into the obs registry.

        Machine/network/noise totals stay monotone (nothing here mutates
        them); repeat runs on one machine flush only their delta via the
        remembered ``_flushed`` watermarks.
        """
        registry = obs.get_registry()
        totals = {
            "sim_messages": self.network.messages_sent,
            "sim_message_bytes": self.network.bytes_sent,
            "sim_cache_bytes_hit": sum(m.bytes_hit for m in self.memories),
            "sim_cache_bytes_missed": sum(
                m.bytes_from_memory for m in self.memories
            ),
            "sim_noise_draws": sum(s.draws for s in self.noise_streams),
        }
        registry.counter("sim_runs").inc()
        registry.counter("sim_events").inc(
            self.sim.events_processed - events_before
        )
        for name, total in totals.items():
            registry.counter(name).inc(total - self._flushed.get(name, 0))
        self._flushed = totals
        registry.histogram("sim_simulated_seconds").observe(self.sim.now)
        if self.trace is not None:
            registry.counter("sim_trace_records").inc(len(self.trace))
            registry.counter("sim_trace_dropped").inc(self.trace.dropped)

    # -- state management (measurement harness) ------------------------------

    def flush_memory(self) -> None:
        """Cold caches on every rank."""
        for memory in self.memories:
            memory.flush()

    def drain_network(self) -> None:
        """Forget the network contention backlog."""
        self.network.drain()

    def counters_for(self, label: str) -> KernelCounters:
        """Aggregate counters for one label across all ranks."""
        total = KernelCounters()
        for ctx in self.contexts:
            c = ctx.counters.get(label)
            if c is not None:
                total.merge(c)
        return total

    def all_labels(self) -> list[str]:
        """Labels that accumulated any activity, sorted."""
        labels: set[str] = set()
        for ctx in self.contexts:
            labels.update(ctx.counters)
        return sorted(labels)
