"""Optional execution tracing for debugging, the profiler, and exporters."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence on a rank."""

    time: float
    rank: int
    label: str
    kind: str   # "compute" | "touch" | "send" | "recv" | "wait" | "phase"
    info: Any = None


class Trace:
    """Record of simulated activity, optionally bounded.

    Tracing is off by default (the experiment runs push too many events);
    enable it by passing ``trace=True`` to
    :class:`repro.simmachine.process.Machine`. For long campaigns pass
    ``Trace(max_records=N)`` (or ``trace=N`` to the machine): the trace
    becomes a ring buffer keeping the **newest** ``N`` records, and
    :attr:`dropped` counts evictions — so tracing can stay on during real
    campaigns without exhausting memory.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(
                f"max_records must be >= 1 or None, got {max_records}"
            )
        self.max_records = max_records
        self._records: deque[TraceRecord] = deque(maxlen=max_records)
        self.dropped = 0

    @property
    def records(self) -> list[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def add(self, time: float, rank: int, label: str, kind: str, info: Any = None) -> None:
        """Record one occurrence (evicting the oldest when bounded)."""
        if (
            self.max_records is not None
            and len(self._records) == self.max_records
        ):
            self.dropped += 1
        self._records.append(TraceRecord(time, rank, label, kind, info))

    def by_rank(self, rank: int) -> list[TraceRecord]:
        """All records of one rank, in time order."""
        return [r for r in self._records if r.rank == rank]

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self._records if r.kind == kind]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)
