"""Optional execution tracing for debugging and the profiler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence on a rank."""

    time: float
    rank: int
    label: str
    kind: str   # "compute" | "touch" | "send" | "recv" | "wait" | "phase"
    info: Any = None


class Trace:
    """Append-only record of simulated activity.

    Tracing is off by default (the experiment runs push too many events);
    enable it by passing ``trace=True`` to
    :class:`repro.simmachine.process.Machine`.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def add(self, time: float, rank: int, label: str, kind: str, info: Any = None) -> None:
        """Record one occurrence."""
        self.records.append(TraceRecord(time, rank, label, kind, info))

    def by_rank(self, rank: int) -> list[TraceRecord]:
        """All records of one rank, in time order."""
        return [r for r in self.records if r.rank == rank]

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
