"""Analytic wavefront schedules — an independent check on the engine.

LU's triangular sweeps are structured enough that their makespan can be
computed in closed form by dynamic programming over (rank, plane)
completion times, with no event queue at all. This module re-derives the
schedule of :meth:`repro.npb.lu.LU._make_sweep` from first principles —
deliberately *not* sharing code with the simulator — so the two
implementations validate each other (see
``tests/integration/test_wavefront_validation.py``).

Preconditions for exact agreement: deterministic machine (``noise_cv=0``,
``noise_floor=0``) and no contention (``contention_coeff=0``), because the
DP below does not model the global backlog.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.npb.lu import LU
from repro.npb import workloads as w
from repro.simmachine.machine import MachineConfig
from repro.simmachine.memory import MemoryHierarchy

__all__ = ["analytic_sweep_makespan"]


def _bulk_touch_seconds(bench: LU, config: MachineConfig, rank: int) -> float:
    """Cold memory time of the sweep's region touches on a fresh machine."""
    proc = config.processor
    hierarchy = MemoryHierarchy(
        [(lv.name, lv.capacity_bytes, lv.byte_time) for lv in proc.cache_levels],
        proc.memory_byte_time,
        proc.write_factor,
    )
    total = 0.0
    total += hierarchy.touch(bench.region(rank, "u"), write=False).time
    total += hierarchy.touch(bench.region(rank, "rsd"), write=True).time
    total += hierarchy.touch(bench.jac_region(rank), write=True).time
    return total


def analytic_sweep_makespan(
    bench: LU, config: MachineConfig, lower: bool = True
) -> float:
    """Closed-form makespan of one SSOR_LT / SSOR_UT invocation.

    All ranks start at time 0 with cold caches (one fresh invocation on a
    fresh machine, which is what the equivalence test runs on the engine).
    """
    if config.noise_cv != 0.0 or config.noise_floor != 0.0:
        raise ConfigurationError("analytic schedule requires a noiseless machine")
    if config.network.contention_coeff != 0.0:
        raise ConfigurationError("analytic schedule requires zero contention")
    proc = config.processor
    net = config.network
    grid = bench.grid
    kernel = "SSOR_LT" if lower else "SSOR_UT"
    nz = bench.size.nz

    # Per-rank constants.
    plane_seconds: dict[int, float] = {}
    dims: dict[int, tuple[int, int, int]] = {}
    for rank in bench.ranks():
        nx, ny, _nz = bench.layout.local_dims(rank)
        dims[rank] = (nx, ny, _nz)
        flops = w.LU_FLOPS_PER_POINT[kernel] * bench.layout.local_points(rank)
        plane_seconds[rank] = (
            flops / nz * proc.flop_time
            + _bulk_touch_seconds(bench, config, rank) / nz
        )

    into = -1 if lower else +1
    outof = +1 if lower else -1
    msg = w.LU_PIPELINE_MESSAGE_BYTES

    def burst(count: int) -> tuple[float, float]:
        """(injection seconds, wire seconds) of one per-plane burst."""
        nbytes = msg * count
        inject = count * net.per_message_overhead + nbytes * net.injection_byte_time
        wire = net.latency + nbytes * net.byte_time
        return inject, wire

    # DP state per rank: time its last activity finished, and the arrival
    # times of the bursts it sent for each plane.
    free_at = {rank: 0.0 for rank in bench.ranks()}
    arrival_x: dict[tuple[int, int], float] = {}  # (sender, plane) -> time
    arrival_y: dict[tuple[int, int], float] = {}

    # Process ranks in wavefront (topological) order per plane; since a
    # rank's plane k only depends on its own plane k-1 and its
    # predecessors' plane k, iterating planes outermost with ranks in
    # dependency order is a valid schedule.
    order = sorted(
        bench.ranks(),
        key=lambda r: sum(grid.coords(r)) * (1 if lower else -1),
    )
    makespan = 0.0
    for k in range(nz):
        for rank in order:
            dep_x = grid.neighbor(rank, 0, into)
            dep_y = grid.neighbor(rank, 1, into)
            start = free_at[rank]
            if dep_x is not None:
                start = max(start, arrival_x[(dep_x, k)])
            if dep_y is not None:
                start = max(start, arrival_y[(dep_y, k)])
            t = start + plane_seconds[rank]
            out_x = grid.neighbor(rank, 0, outof)
            out_y = grid.neighbor(rank, 1, outof)
            nx, ny, _ = dims[rank]
            if out_x is not None:
                inject, wire = burst(ny)
                arrival_x[(rank, k)] = t + inject + wire
                t += inject  # blocking send: rank busy during injection
            if out_y is not None:
                inject, wire = burst(nx)
                arrival_y[(rank, k)] = t + inject + wire
                t += inject
            free_at[rank] = t
            makespan = max(makespan, t)
    return makespan
