"""MPI-like message passing for the simulated machine.

The API mirrors mpi4py's style (``send``/``recv``/``isend``/``irecv``,
``barrier``, ``bcast``, ``reduce``, ``allreduce``, ``allgather``,
``sendrecv``), with one twist imposed by the discrete-event engine: blocking
operations and collectives are *generators* and must be invoked with
``yield from`` inside a rank program::

    def program(ctx):
        comm = ctx.comm
        if comm.rank == 0:
            yield from comm.send(1, nbytes=800, tag=7, payload="hello")
        else:
            msg = yield from comm.recv(0, tag=7)

Collectives are implemented as real tree/ring algorithms over point-to-point
messages, so their cost scales with ``log P`` (or ``P``) like on a real
machine rather than being an analytic formula.
"""

from repro.simmpi.comm import Comm, World, attach_world
from repro.simmpi.datatypes import BYTE, DOUBLE, INT, WORD, bytes_of
from repro.simmpi.request import Request
from repro.simmpi.topology import CartGrid, partition_sizes, pow2_grid_shape, square_grid_shape

__all__ = [
    "BYTE",
    "CartGrid",
    "Comm",
    "DOUBLE",
    "INT",
    "Request",
    "WORD",
    "World",
    "attach_world",
    "bytes_of",
    "partition_sizes",
    "pow2_grid_shape",
    "square_grid_shape",
]
