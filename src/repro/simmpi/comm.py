"""Point-to-point messaging and tree-based collectives.

See the package docstring for usage. Implementation notes:

* Message matching is by ``(source, tag)`` with per-channel FIFO order.
  ``MPI_ANY_SOURCE`` semantics are deliberately unsupported — the NPB
  work-alikes always know their peers, and wildcard matching would make
  simulations timing-dependent in ways the paper's codes are not.
* Collectives allocate tags from a private per-communicator sequence, so
  they never collide with user tags (which must be < :data:`COLL_TAG_BASE`)
  and consecutive collectives never collide with each other. SPMD discipline
  (every rank calls the same collectives in the same order) is assumed, as
  in MPI.
* Collectives are real algorithms over point-to-point messages: binomial
  trees for ``bcast``/``reduce``/``barrier``, a ring for ``allgather``,
  pairwise exchanges for ``alltoall`` — their simulated cost therefore
  scales with ``P`` the way real MPI implementations do.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import CommunicationError
from repro.simmachine._backend import Event
from repro.simmachine.process import Machine, RankContext
from repro.simmpi.request import Request

__all__ = ["COLL_TAG_BASE", "World", "Comm", "attach_world"]

#: User tags must stay below this; collectives use tags at/above it.
COLL_TAG_BASE = 1_000_000


class World:
    """Shared mailbox state for all ranks of one machine run."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.size = machine.nprocs
        # pending_msgs[dst][(src, tag)] -> deque of (arrival, nbytes, payload)
        self.pending_msgs: list[dict[tuple[int, int], deque]] = [
            {} for _ in range(self.size)
        ]
        # pending_recvs[dst][(src, tag)] -> deque of Event
        self.pending_recvs: list[dict[tuple[int, int], deque]] = [
            {} for _ in range(self.size)
        ]
        #: Fault injection hook for tests: called as ``fn(src, dst, tag)``
        #: for every message; returning True silently drops it (the sender
        #: completes, the payload never arrives — the receiver's eventual
        #: deadlock is reported by the engine). None = no faults.
        self.fault_injector = None
        self.dropped_messages = 0

    def unmatched_messages(self) -> int:
        """Messages delivered but never received (leak detector for tests)."""
        return sum(
            len(q) for boxes in self.pending_msgs for q in boxes.values()
        )


class Comm:
    """Per-rank communicator facade."""

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self.ctx: RankContext = world.machine.contexts[rank]
        self.sim = world.machine.sim
        self._coll_seq = 0

    # -- validation ---------------------------------------------------------

    def _check_peer(self, peer: int) -> None:
        if not isinstance(peer, int) or isinstance(peer, bool):
            raise CommunicationError(f"rank must be an int, got {peer!r}")
        if peer < 0:
            raise CommunicationError(
                f"negative rank {peer} (wildcard receives are not supported)"
            )
        if peer >= self.size:
            raise CommunicationError(
                f"rank {peer} out of range for communicator of size {self.size}"
            )

    @staticmethod
    def _check_tag(tag: int, collective: bool = False) -> None:
        if tag < 0:
            raise CommunicationError(f"negative tag {tag}")
        if not collective and tag >= COLL_TAG_BASE:
            raise CommunicationError(
                f"user tags must be < {COLL_TAG_BASE}, got {tag}"
            )

    # -- point to point -------------------------------------------------------

    def isend(
        self,
        dest: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        messages: int = 1,
        _collective: bool = False,
    ) -> Request:
        """Nonblocking send; the request completes when injection finishes.

        ``messages > 1`` sends a burst of small messages totalling
        ``nbytes`` as one matched unit (see
        :meth:`repro.simmachine.network.NetworkModel.send_timing`).
        """
        self._check_peer(dest)
        self._check_tag(tag, _collective)
        timing = self.world.machine.network.send_timing(
            self.rank, dest, nbytes, self.sim.now, messages
        )
        self.ctx.account_send(nbytes)
        if self.world.fault_injector is not None and self.world.fault_injector(
            self.rank, dest, tag
        ):
            # Message lost in the network: sender proceeds normally.
            self.world.dropped_messages += 1
            send_ev = self.sim.timeout(max(0.0, timing.sender_done - self.sim.now))
            return Request(send_ev, "send", dest, tag, nbytes)
        key = (self.rank, tag)
        recv_box = self.world.pending_recvs[dest].get(key)
        if recv_box:
            ev = recv_box.popleft()
            ev.trigger_at(payload, max(0.0, timing.arrival - self.sim.now))
        else:
            self.world.pending_msgs[dest].setdefault(key, deque()).append(
                (timing.arrival, nbytes, payload)
            )
        send_ev = self.sim.timeout(max(0.0, timing.sender_done - self.sim.now))
        return Request(send_ev, "send", dest, tag, nbytes)

    def irecv(self, source: int, tag: int = 0, _collective: bool = False) -> Request:
        """Nonblocking receive from a specific source and tag."""
        self._check_peer(source)
        self._check_tag(tag, _collective)
        key = (source, tag)
        boxes = self.world.pending_msgs[self.rank]
        queue = boxes.get(key)
        ev: Event = self.sim.event()
        nbytes = -1
        if queue:
            arrival, nbytes, payload = queue.popleft()
            if not queue:
                del boxes[key]
            ev.trigger_at(payload, max(0.0, arrival - self.sim.now))
        else:
            self.world.pending_recvs[self.rank].setdefault(key, deque()).append(ev)
        return Request(ev, "recv", source, tag, nbytes)

    def wait(self, request: Request) -> Generator[Event, Any, Any]:
        """Block until ``request`` completes; returns the payload (recv)."""
        t0 = self.sim.now
        value = yield request.event
        self.ctx.account_wait(self.sim.now - t0)
        return value

    def waitany(
        self, requests: Iterable[Request]
    ) -> Generator[Event, Any, tuple[int, Any]]:
        """Block until the first request completes.

        Returns ``(index, payload)`` of the completed request; the others
        remain pending and must still be waited on eventually.
        """
        reqs = list(requests)
        t0 = self.sim.now
        index, value = yield self.sim.any_of([r.event for r in reqs])
        self.ctx.account_wait(self.sim.now - t0)
        return index, value

    def waitall(
        self, requests: Iterable[Request]
    ) -> Generator[Event, Any, list[Any]]:
        """Block until every request completes; returns payloads in order."""
        reqs = list(requests)
        t0 = self.sim.now
        values = yield self.sim.all_of([r.event for r in reqs])
        self.ctx.account_wait(self.sim.now - t0)
        return values

    def send(
        self,
        dest: int,
        nbytes: int,
        tag: int = 0,
        payload: Any = None,
        messages: int = 1,
        _collective: bool = False,
    ) -> Generator[Event, Any, None]:
        """Blocking (buffered) send: returns once the message is injected."""
        req = self.isend(dest, nbytes, tag, payload, messages, _collective)
        yield from self.wait(req)

    def recv(
        self, source: int, tag: int = 0, _collective: bool = False
    ) -> Generator[Event, Any, Any]:
        """Blocking receive; returns the payload."""
        req = self.irecv(source, tag, _collective)
        return (yield from self.wait(req))

    def sendrecv(
        self,
        dest: int,
        nbytes: int,
        send_tag: int = 0,
        source: Optional[int] = None,
        recv_tag: Optional[int] = None,
        payload: Any = None,
        messages: int = 1,
        _collective: bool = False,
    ) -> Generator[Event, Any, Any]:
        """Simultaneous exchange: returns the received payload."""
        source = dest if source is None else source
        recv_tag = send_tag if recv_tag is None else recv_tag
        rreq = self.irecv(source, recv_tag, _collective)
        sreq = self.isend(dest, nbytes, send_tag, payload, messages, _collective)
        values = yield from self.waitall([rreq, sreq])
        return values[0]

    # -- collectives ----------------------------------------------------------

    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return COLL_TAG_BASE + self._coll_seq

    def barrier(self) -> Generator[Event, Any, None]:
        """Synchronize all ranks (binomial gather + binomial broadcast)."""
        tag = self._next_coll_tag()
        yield from self._reduce_impl(0, 0, tag, None, lambda a, b: None)
        # Reduce uses child->parent channels, bcast parent->child, so the
        # same tag cannot mismatch between the two phases.
        yield from self._bcast_impl(0, 0, tag, None)

    def bcast(
        self, nbytes: int, root: int = 0, payload: Any = None
    ) -> Generator[Event, Any, Any]:
        """Broadcast ``payload`` from ``root``; every rank returns it."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        return (yield from self._bcast_impl(nbytes, root, tag, payload))

    def _bcast_impl(
        self,
        nbytes: int,
        root: int,
        tag: int,
        payload: Any,
    ) -> Generator[Event, Any, Any]:
        size = self.size
        relrank = (self.rank - root) % size
        mask = 1
        while mask < size:
            if relrank & mask:
                src = (relrank - mask + root) % size
                payload = yield from self.recv(src, tag, _collective=True)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if relrank + mask < size:
                dst = (relrank + mask + root) % size
                yield from self.send(dst, nbytes, tag, payload, _collective=True)
            mask >>= 1
        return payload

    def reduce(
        self,
        value: Any,
        nbytes: int,
        root: int = 0,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
    ) -> Generator[Event, Any, Any]:
        """Reduce ``value`` across ranks with ``op``; result only at root."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        return (yield from self._reduce_impl(value, nbytes, tag, root, op))

    def _reduce_impl(
        self,
        value: Any,
        nbytes: int,
        tag: int,
        root: Optional[int],
        op: Callable[[Any, Any], Any],
    ) -> Generator[Event, Any, Any]:
        size = self.size
        base = 0 if root is None else root
        relrank = (self.rank - base) % size
        mask = 1
        while mask < size:
            if relrank & mask:
                dst = ((relrank & ~mask) + base) % size
                yield from self.send(dst, nbytes, tag, value, _collective=True)
                return None
            peer = relrank | mask
            if peer < size:
                other = yield from self.recv((peer + base) % size, tag, _collective=True)
                value = op(value, other)
            mask <<= 1
        return value

    def allreduce(
        self,
        value: Any,
        nbytes: int,
        op: Callable[[Any, Any], Any] = lambda a, b: a + b,
        algorithm: str = "auto",
    ) -> Generator[Event, Any, Any]:
        """Reduce across ranks; every rank returns the result.

        Algorithms (as in real MPI implementations):

        * ``"recursive_doubling"`` — log2(P) pairwise exchange rounds;
          power-of-two communicators only. Requires a *commutative* op
          (partner order differs across ranks).
        * ``"tree"`` — binomial reduce to rank 0 + binomial broadcast
          (2 log2(P) rounds); any size and op ordering.
        * ``"auto"`` — recursive doubling when P is a power of two,
          otherwise tree.
        """
        if algorithm not in ("auto", "tree", "recursive_doubling"):
            raise CommunicationError(
                f"unknown allreduce algorithm {algorithm!r}"
            )
        pow2 = self.size & (self.size - 1) == 0
        if algorithm == "recursive_doubling" and not pow2:
            raise CommunicationError(
                "recursive doubling needs a power-of-two communicator, "
                f"got {self.size}"
            )
        if algorithm == "tree" or (algorithm == "auto" and not pow2):
            tag = self._next_coll_tag()
            result = yield from self._reduce_impl(value, nbytes, tag, 0, op)
            result = yield from self._bcast_impl(nbytes, 0, tag, result)
            return result
        # Recursive doubling: after round k every rank holds the reduction
        # of its 2^(k+1)-rank block.
        tag = self._next_coll_tag()
        self._coll_seq += self.size.bit_length()  # one tag per round
        mask = 1
        round_no = 0
        while mask < self.size:
            partner = self.rank ^ mask
            other = yield from self.sendrecv(
                partner,
                nbytes,
                send_tag=tag + round_no,
                payload=value,
                _collective=True,
            )
            value = op(value, other)
            mask <<= 1
            round_no += 1
        return value

    def allgather(
        self, value: Any, nbytes: int
    ) -> Generator[Event, Any, list[Any]]:
        """Ring allgather; every rank returns ``[value_0, ..., value_{P-1}]``."""
        tag = self._next_coll_tag()
        size = self.size
        blocks: list[Any] = [None] * size
        blocks[self.rank] = value
        right = (self.rank + 1) % size
        left = (self.rank - 1) % size
        send_idx = self.rank
        for _step in range(size - 1):
            recv_idx = (send_idx - 1) % size
            got = yield from self.sendrecv(
                right,
                nbytes,
                send_tag=tag,
                source=left,
                payload=(send_idx, blocks[send_idx]),
                _collective=True,
            )
            idx, val = got
            if idx != recv_idx:
                raise CommunicationError(
                    f"allgather ring out of sync: expected block {recv_idx}, "
                    f"got {idx}"
                )
            blocks[recv_idx] = val
            send_idx = recv_idx
        return blocks

    def alltoall(
        self, values: list[Any], nbytes_each: int
    ) -> Generator[Event, Any, list[Any]]:
        """Pairwise-exchange all-to-all; ``values[d]`` goes to rank ``d``."""
        if len(values) != self.size:
            raise CommunicationError(
                f"alltoall needs {self.size} values, got {len(values)}"
            )
        tag = self._next_coll_tag()
        # Pairwise exchange uses `size - 1` distinct tags; advance the
        # sequence so the next collective cannot collide with them.
        self._coll_seq += self.size
        size = self.size
        result: list[Any] = [None] * size
        result[self.rank] = values[self.rank]
        for step in range(1, size):
            dst = (self.rank + step) % size
            src = (self.rank - step) % size
            result[src] = yield from self.sendrecv(
                dst,
                nbytes_each,
                send_tag=tag + step,
                source=src,
                payload=values[dst],
                _collective=True,
            )
        return result

    def gather(
        self, value: Any, nbytes: int, root: int = 0
    ) -> Generator[Event, Any, Optional[list[Any]]]:
        """Gather one value per rank to ``root`` (binomial tree)."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        size = self.size
        relrank = (self.rank - root) % size
        # Each node accumulates (rank, value) pairs from its subtree.
        acc: list[tuple[int, Any]] = [(self.rank, value)]
        mask = 1
        while mask < size:
            if relrank & mask:
                dst = ((relrank & ~mask) + root) % size
                yield from self.send(
                    dst, nbytes * len(acc), tag, acc, _collective=True
                )
                return None
            peer = relrank | mask
            if peer < size:
                got = yield from self.recv((peer + root) % size, tag, _collective=True)
                acc.extend(got)
            mask <<= 1
        out: list[Any] = [None] * size
        for rank, val in acc:
            out[rank] = val
        return out

    def scatter(
        self, values: Optional[list[Any]], nbytes: int, root: int = 0
    ) -> Generator[Event, Any, Any]:
        """Scatter one value per rank from ``root`` (linear)."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommunicationError(
                    f"scatter at root needs {self.size} values"
                )
            requests = [
                self.isend(dst, nbytes, tag, values[dst], _collective=True)
                for dst in range(self.size)
                if dst != root
            ]
            yield from self.waitall(requests)
            return values[root]
        return (yield from self.recv(root, tag, _collective=True))


def attach_world(machine: Machine) -> World:
    """Create a :class:`World` for ``machine`` and attach per-rank comms.

    After this call every ``machine.contexts[r].comm`` is a :class:`Comm`.
    """
    world = World(machine)
    for ctx in machine.contexts:
        ctx.comm = Comm(world, ctx.rank)
    return world
