"""Elementary datatype sizes for sizing messages.

The paper describes LU's pipelined communication as "a relatively large
number of small communications of five words each"; a *word* on the IBM SP
is 8 bytes, hence :data:`WORD`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Datatype", "BYTE", "INT", "DOUBLE", "WORD", "bytes_of"]


@dataclass(frozen=True)
class Datatype:
    """A named elementary type with a size in bytes."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"datatype {self.name!r} size must be > 0")


BYTE = Datatype("byte", 1)
INT = Datatype("int", 4)
DOUBLE = Datatype("double", 8)
WORD = Datatype("word", 8)


def bytes_of(count: int, datatype: Datatype = DOUBLE) -> int:
    """Message size in bytes for ``count`` elements of ``datatype``."""
    if count < 0:
        raise ConfigurationError(f"negative element count {count}")
    return count * datatype.size
