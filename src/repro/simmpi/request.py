"""Nonblocking-operation handles."""

from __future__ import annotations

from typing import Any, Optional

from repro.simmachine._backend import Event

__all__ = ["Request"]


class Request:
    """Handle for a nonblocking send or receive.

    The underlying :class:`~repro.simmachine.engine.Event` fires when the
    operation completes; for receives the event's value is the message
    payload. Use ``yield from comm.wait(req)`` / ``comm.waitall(reqs)``
    inside a rank program.
    """

    __slots__ = ("event", "kind", "peer", "tag", "nbytes")

    def __init__(self, event: Event, kind: str, peer: int, tag: int, nbytes: int) -> None:
        self.event = event
        self.kind = kind  # "send" | "recv"
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self.event.processed

    @property
    def payload(self) -> Optional[Any]:
        """The received payload (receives only; None before completion)."""
        if not self.event.triggered:
            return None
        return self.event.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.complete else "pending"
        return f"<Request {self.kind} peer={self.peer} tag={self.tag} {state}>"
