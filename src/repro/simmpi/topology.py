"""Process-grid topologies used by the NPB work-alikes.

* BT and SP require a **square** number of processes arranged in a 2-D grid
  (NPB multi-partition scheme).
* LU requires a **power-of-two** number of processes, obtained "by halving
  the grid repeatedly in the first two dimensions, alternately x and then
  y" (paper §4.3) — i.e. a ``2^ceil(k/2) × 2^floor(k/2)`` grid for
  ``P = 2^k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "CartGrid",
    "partition_sizes",
    "pow2_grid_shape",
    "square_grid_shape",
]


def square_grid_shape(nprocs: int) -> tuple[int, int]:
    """Grid shape for BT/SP; raises unless ``nprocs`` is a perfect square."""
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    q = math.isqrt(nprocs)
    if q * q != nprocs:
        raise ConfigurationError(
            f"BT/SP require a square number of processes, got {nprocs}"
        )
    return (q, q)


def pow2_grid_shape(nprocs: int) -> tuple[int, int]:
    """LU grid shape: halve x, then y, alternately (power of two only)."""
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    if nprocs & (nprocs - 1):
        raise ConfigurationError(
            f"LU requires a power-of-two number of processes, got {nprocs}"
        )
    k = nprocs.bit_length() - 1
    px = 1 << ((k + 1) // 2)  # x is halved first, so it gets the extra cut
    py = 1 << (k // 2)
    return (px, py)


def partition_sizes(n: int, parts: int) -> list[int]:
    """Split ``n`` grid points into ``parts`` nearly equal contiguous chunks.

    The first ``n % parts`` chunks get the extra point — the same convention
    as the NPB block decomposition. This intentional imbalance is one source
    of load-imbalance coupling.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1, got {parts}")
    if n < parts:
        raise ConfigurationError(f"cannot split {n} points into {parts} parts")
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


@dataclass(frozen=True)
class CartGrid:
    """A 2-D Cartesian process grid with row-major rank ordering."""

    px: int
    py: int

    def __post_init__(self) -> None:
        if self.px < 1 or self.py < 1:
            raise ConfigurationError(
                f"grid dims must be >= 1, got {self.px}x{self.py}"
            )

    @property
    def size(self) -> int:
        """Total number of ranks in the grid."""
        return self.px * self.py

    def coords(self, rank: int) -> tuple[int, int]:
        """``rank -> (i, j)`` with ``i`` the x index (slow) and ``j`` the y."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(
                f"rank {rank} out of range for {self.px}x{self.py} grid"
            )
        return divmod(rank, self.py)

    def rank_of(self, i: int, j: int) -> int:
        """``(i, j) -> rank`` (coordinates must be in range)."""
        if not (0 <= i < self.px and 0 <= j < self.py):
            raise ConfigurationError(
                f"coords ({i},{j}) out of range for {self.px}x{self.py} grid"
            )
        return i * self.py + j

    def neighbor(
        self, rank: int, dim: int, step: int, periodic: bool = False
    ) -> int | None:
        """Neighbor ``step`` away along ``dim`` (0=x, 1=y); None off-grid.

        With ``periodic=True`` the grid wraps (BT/SP multi-partition
        successor relation is cyclic).
        """
        if dim not in (0, 1):
            raise ConfigurationError(f"dim must be 0 or 1, got {dim}")
        i, j = self.coords(rank)
        if dim == 0:
            i += step
            if periodic:
                i %= self.px
            elif not 0 <= i < self.px:
                return None
        else:
            j += step
            if periodic:
                j %= self.py
            elif not 0 <= j < self.py:
                return None
        return self.rank_of(i, j)

    def neighbors4(self, rank: int, periodic: bool = False) -> list[int]:
        """Existing von-Neumann neighbors (west, east, south, north)."""
        out = []
        for dim, step in ((0, -1), (0, +1), (1, -1), (1, +1)):
            n = self.neighbor(rank, dim, step, periodic)
            if n is not None and n != rank:
                out.append(n)
        return out
