"""Shared utilities: statistics helpers, table rendering, validation."""

from repro.util.stats import (
    geometric_mean,
    mean,
    relative_error,
    percent_relative_error,
    summary,
    weighted_average,
)
from repro.util.tables import Table, render_table
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in,
    check_type,
)

__all__ = [
    "Table",
    "check_in",
    "check_non_negative",
    "check_positive",
    "check_type",
    "geometric_mean",
    "mean",
    "percent_relative_error",
    "relative_error",
    "render_table",
    "summary",
    "weighted_average",
]
