"""Small statistics helpers used throughout the library.

These are deliberately dependency-light (plain ``math``) because they are
called inside the discrete-event simulator's hot paths, where constructing
NumPy arrays for 3-element sequences would dominate the cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "Summary",
    "geometric_mean",
    "mean",
    "percent_relative_error",
    "relative_error",
    "stddev",
    "summary",
    "weighted_average",
]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean. Raises :class:`ConfigurationError` on empty input."""
    vals = list(values)
    if not vals:
        raise ConfigurationError("mean() of empty sequence")
    return sum(vals) / len(vals)


def stddev(values: Iterable[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than two samples."""
    vals = list(values)
    if len(vals) < 2:
        return 0.0
    m = mean(vals)
    return math.sqrt(sum((v - m) ** 2 for v in vals) / (len(vals) - 1))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    vals = list(values)
    if not vals:
        raise ConfigurationError("geometric_mean() of empty sequence")
    if any(v <= 0 for v in vals):
        raise ConfigurationError("geometric_mean() requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def weighted_average(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted average ``sum(v*w)/sum(w)``.

    This is the exact operation the paper uses to turn chain coupling values
    into per-kernel coefficients (Section 3): the coupling values are the
    ``values`` and the measured chain times are the ``weights``.
    """
    if len(values) != len(weights):
        raise ConfigurationError(
            "weighted_average(): %d values but %d weights"
            % (len(values), len(weights))
        )
    if not values:
        raise ConfigurationError("weighted_average() of empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ConfigurationError("weighted_average() requires positive total weight")
    return sum(v * w for v, w in zip(values, weights)) / total


def relative_error(predicted: float, actual: float) -> float:
    """Relative error ``|predicted - actual| / |actual|``."""
    if actual == 0:
        raise ConfigurationError("relative_error() with zero actual value")
    return abs(predicted - actual) / abs(actual)


def percent_relative_error(predicted: float, actual: float) -> float:
    """Relative error expressed in percent, as reported in the paper tables."""
    return 100.0 * relative_error(predicted, actual)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample of measurements."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); 0 when mean is 0."""
        return self.std / self.mean if self.mean else 0.0


def summary(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from a sample."""
    vals = list(values)
    if not vals:
        raise ConfigurationError("summary() of empty sequence")
    return Summary(
        n=len(vals),
        mean=mean(vals),
        std=stddev(vals),
        min=min(vals),
        max=max(vals),
    )
