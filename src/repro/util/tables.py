"""ASCII table rendering in the layout of the paper's result tables.

Every experiment driver produces a :class:`Table`, which the benchmarks print
and EXPERIMENTS.md embeds. Cells may be floats (formatted with a per-table
precision), strings, or ``(value, percent_error)`` pairs rendered as
``123.45 (6.78 %)`` exactly like the paper's "Execution Time in Seconds
(% Relative Error)" columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Table", "render_table"]


def _format_cell(cell: Any, precision: int) -> str:
    if cell is None:
        return ""
    if isinstance(cell, tuple) and len(cell) == 2:
        value, err = cell
        return f"{value:.{precision}f} ({err:.2f} %)"
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


@dataclass
class Table:
    """A titled grid of cells with a header row.

    Parameters
    ----------
    title:
        Caption, e.g. ``"Table 3b: Comparison of execution times for BT
        with Class W using three kernels"``.
    columns:
        Header labels; the first column is the row label.
    rows:
        Each row is a list whose first element is the row label.
    precision:
        Decimal places for float cells.
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    precision: int = 2
    notes: list[str] = field(default_factory=list)

    def add_row(self, label: str, *cells: Any) -> None:
        """Append a row; pads/truncation is an error to catch driver bugs."""
        if len(cells) != len(self.columns) - 1:
            raise ValueError(
                f"row {label!r} has {len(cells)} cells, "
                f"expected {len(self.columns) - 1}"
            )
        self.rows.append([label, *cells])

    def add_note(self, note: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(note)

    def cell(self, row_label: str, column: str) -> Any:
        """Look up a cell by row label and column header."""
        col = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[col]
        raise KeyError(f"no row labelled {row_label!r}")

    def column_values(self, column: str) -> list[Any]:
        """All cells in one column, top to bottom."""
        col = self.columns.index(column)
        return [row[col] for row in self.rows]

    def row_labels(self) -> list[str]:
        """Labels of all rows, top to bottom."""
        return [row[0] for row in self.rows]

    def render(self) -> str:
        """Render to an aligned ASCII string."""
        return render_table(self)

    def to_csv(self) -> str:
        """Render to CSV with the same cell formatting as the ASCII table.

        The header row is the column labels; ``(value, error)`` pairs and
        floats use the table's ``precision``, so the output is a stable
        regression artifact (golden files) rather than a dump of raw
        floats.
        """
        import csv
        import io

        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(
                [str(row[0])]
                + [_format_cell(c, self.precision) for c in row[1:]]
            )
        return out.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_table(table: Table) -> str:
    """Render a :class:`Table` as aligned monospace text."""
    text_rows: list[list[str]] = [list(table.columns)]
    for row in table.rows:
        text_rows.append(
            [str(row[0])] + [_format_cell(c, table.precision) for c in row[1:]]
        )
    widths = [
        max(len(r[i]) for r in text_rows) for i in range(len(table.columns))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [table.title, "=" * max(len(table.title), len(sep))]
    for i, row in enumerate(text_rows):
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        )
        if i == 0:
            lines.append(sep)
    for note in table.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
