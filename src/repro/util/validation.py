"""Argument-validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any, Collection

from repro.errors import ConfigurationError

__all__ = ["check_positive", "check_non_negative", "check_in", "check_type"]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Collection[Any]) -> Any:
    """Require ``value`` to be a member of ``allowed``; return it."""
    if value not in allowed:
        raise ConfigurationError(
            f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}"
        )
    return value


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Require ``isinstance(value, types)``; return it."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise ConfigurationError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )
    return value
