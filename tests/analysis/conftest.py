"""Helpers for analysis tests: write a fixture tree, lint it, inspect."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_paths, select_rules


def write_tree(root, files):
    """Materialize ``{relative_path: source}`` under ``root``."""
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


@pytest.fixture
def lint(tmp_path):
    """Lint a fixture tree; returns the finding list (paths tree-relative)."""

    def _lint(files, select=None):
        write_tree(tmp_path, files)
        rules = select_rules(select) if select is not None else None
        return analyze_paths([str(tmp_path)], rules=rules, root=str(tmp_path))

    return _lint
