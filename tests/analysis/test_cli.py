"""``repro lint`` exit codes, reporters, and baseline workflow."""

from __future__ import annotations

import json

from repro.analysis.cli import DEFAULT_BASELINE, main
from tests.analysis.conftest import write_tree

CLEAN = {
    "service/pipe.py": """\
    def drain(q):
        return q.get(timeout=1.0)
    """
}

VIOLATING = {
    "service/pipe.py": """\
    def drain(q):
        return q.get()
    """
}


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 0

    def test_findings_exit_one(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 1
        out = capsys.readouterr().out
        assert "REP003" in out
        assert "service/pipe.py:2" in out
        assert "1 finding(s)" in out

    def test_unknown_rule_is_usage_error(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["does-not-exist"]) == 2
        assert "does-not-exist" in capsys.readouterr().err

    def test_select_restricts_rules(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--select", "REP001"]) == 0

    def test_unparseable_file_reports_rep000(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, {"broken.py": "def f(:\n"})
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 1
        assert "REP000" in capsys.readouterr().out


class TestJsonReport:
    def test_json_artifact_shape(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--format", "json", "-o", "report.json"]) == 1
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["version"] == 2
        assert report["files_analyzed"] == 1
        assert report["summary"] == {
            "total": 1,
            "by_rule": {"REP003": 1},
            "stale_suppressions": 0,
        }
        assert "stats" in report and "rules" in report["stats"]
        (finding,) = report["findings"]
        assert finding["rule"] == "REP003"
        assert finding["path"].endswith("service/pipe.py")
        assert finding["id"].startswith("REP003:")
        catalog = {rule["id"] for rule in report["rules"]}
        assert {"REP001", "REP006"} <= catalog


class TestRuleFilterAndStats:
    def test_rule_flag_restricts_rules(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--rule", "REP001"]) == 0
        assert main([".", "--rule", "REP003"]) == 1

    def test_rule_flag_repeats_and_merges_with_select(
        self, tmp_path, monkeypatch
    ):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main(
            [".", "--select", "REP001", "--rule", "REP002,REP004",
             "--rule", "REP003"]
        ) == 1
        assert main([".", "--select", "REP001", "--rule", "REP002"]) == 0

    def test_stats_section_in_text_report(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--stats"]) == 1
        out = capsys.readouterr().out
        assert "analysis:" in out
        assert "REP003: 1 finding(s)" in out


TWO_HOP_CLOCK = {
    "simmachine/__init__.py": "",
    "simmachine/clock.py": """\
    from util.timing import stamp

    def advance(state):
        return stamp(state)
    """,
    "util/__init__.py": "",
    "util/timing.py": """\
    import time

    def stamp(state):
        return raw()

    def raw():
        return time.time()
    """,
}


class TestGraphRulesThroughCli:
    def test_lint_dot_resolves_cross_module_taint(
        self, tmp_path, monkeypatch, capsys
    ):
        # `repro lint .` must anchor module names at the cwd; a regression
        # here silently drops cross-module edges and REP010 goes blind.
        write_tree(tmp_path, TWO_HOP_CLOCK)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--rule", "REP010"]) == 1
        out = capsys.readouterr().out
        assert "REP010" in out
        assert "time.time" in out
        assert "simmachine.clock.advance -> util.timing.stamp" in out

    def test_witness_survives_the_graph_cache(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, TWO_HOP_CLOCK)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--graph", "g.json", "--graph-only"]) == 0
        capsys.readouterr()
        assert main(
            [".", "--graph", "g.json", "--rule", "REP010", "--format",
             "json", "-o", "report.json"]
        ) == 1
        assert "loaded cached call graph" in capsys.readouterr().err
        report = json.loads((tmp_path / "report.json").read_text())
        (finding,) = report["findings"]
        assert finding["rule"] == "REP010"
        assert finding["witness"][0].startswith(
            "simmachine.clock.advance -> util.timing.stamp"
        )


class TestGraphCache:
    def test_graph_only_builds_and_saves(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--graph", "graph.json", "--graph-only"]) == 0
        assert "built call graph" in capsys.readouterr().err
        document = json.loads((tmp_path / "graph.json").read_text())
        assert document["fingerprints"]

    def test_graph_only_requires_graph(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--graph-only"]) == 2
        assert "--graph" in capsys.readouterr().err

    def test_cached_graph_is_reused_until_files_change(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--graph", "graph.json", "--graph-only"]) == 0
        capsys.readouterr()
        assert main([".", "--graph", "graph.json"]) == 0
        assert "loaded cached call graph" in capsys.readouterr().err
        # Any file change invalidates the fingerprints -> rebuild.
        write_tree(tmp_path, {"service/pipe.py": "def drain(q):\n    return 1\n"})
        assert main([".", "--graph", "graph.json"]) == 0
        assert "built call graph" in capsys.readouterr().err


class TestStaleSuppressions:
    def test_unused_suppression_exits_one(self, tmp_path, monkeypatch, capsys):
        write_tree(
            tmp_path,
            {
                "service/pipe.py": """\
                def drain(q):
                    return q.get(timeout=1.0)  # repro: ignore[REP003]
                """
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 1
        out = capsys.readouterr().out
        assert "stale suppressions" in out
        assert "service/pipe.py:2" in out

    def test_used_suppression_is_not_stale(self, tmp_path, monkeypatch):
        write_tree(
            tmp_path,
            {
                "service/pipe.py": """\
                def drain(q):
                    return q.get()  # repro: ignore[REP003] — drained on close
                """
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 0

    def test_docstring_example_is_not_a_suppression(
        self, tmp_path, monkeypatch
    ):
        write_tree(
            tmp_path,
            {
                "service/pipe.py": '''\
                """Example: q.get()  # repro: ignore[REP003]"""

                def drain(q):
                    return q.get(timeout=1.0)
                '''
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 0

    def test_filtered_run_skips_unrelated_suppressions(
        self, tmp_path, monkeypatch
    ):
        # An unused REP003 suppression is only judged when REP003 runs.
        write_tree(
            tmp_path,
            {
                "service/pipe.py": """\
                def drain(q):
                    return q.get(timeout=1.0)  # repro: ignore[REP003]
                """
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main([".", "--rule", "REP001"]) == 0
        assert main([".", "--rule", "REP003"]) == 1

    def test_json_report_lists_unused_suppressions(
        self, tmp_path, monkeypatch
    ):
        write_tree(
            tmp_path,
            {
                "service/pipe.py": """\
                def drain(q):
                    return q.get(timeout=1.0)  # repro: ignore[REP003]
                """
            },
        )
        monkeypatch.chdir(tmp_path)
        assert main([".", "--format", "json", "-o", "report.json"]) == 1
        report = json.loads((tmp_path / "report.json").read_text())
        (entry,) = report["unused_suppressions"]
        assert entry["path"].endswith("service/pipe.py")
        assert entry["rules"] == ["REP003"]
        assert report["summary"]["stale_suppressions"] == 1


class TestBaselineWorkflow:
    def test_update_then_clean_then_stale(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)

        # Grandfather the existing violation.
        assert main([".", "--update-baseline"]) == 0
        baseline = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
        assert len(baseline["findings"]) == 1
        capsys.readouterr()

        # The default baseline in cwd is picked up automatically.
        assert main(["."]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # Fixing the violation turns the entry stale: the baseline must
        # shrink as debt is paid, so this still fails the run.
        write_tree(tmp_path, CLEAN)
        assert main(["."]) == 1
        assert "stale baseline" in capsys.readouterr().out
        assert main([".", "--update-baseline"]) == 0
        assert main(["."]) == 0

    def test_explicit_baseline_path(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--update-baseline", "--baseline", "bl.json"]) == 0
        assert main([".", "--baseline", "bl.json"]) == 0
        assert main(["."]) == 1  # without the baseline the finding is live

    def test_corrupt_baseline_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, CLEAN)
        (tmp_path / "bl.json").write_text("{", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main([".", "--baseline", "bl.json"]) == 2
        assert "invalid baseline" in capsys.readouterr().err
