"""``repro lint`` exit codes, reporters, and baseline workflow."""

from __future__ import annotations

import json

from repro.analysis.cli import DEFAULT_BASELINE, main
from tests.analysis.conftest import write_tree

CLEAN = {
    "service/pipe.py": """\
    def drain(q):
        return q.get(timeout=1.0)
    """
}

VIOLATING = {
    "service/pipe.py": """\
    def drain(q):
        return q.get()
    """
}


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 0

    def test_findings_exit_one(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 1
        out = capsys.readouterr().out
        assert "REP003" in out
        assert "service/pipe.py:2" in out
        assert "1 finding(s)" in out

    def test_unknown_rule_is_usage_error(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--select", "REP999"]) == 2
        assert "REP999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["does-not-exist"]) == 2
        assert "does-not-exist" in capsys.readouterr().err

    def test_select_restricts_rules(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--select", "REP001"]) == 0

    def test_unparseable_file_reports_rep000(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, {"broken.py": "def f(:\n"})
        monkeypatch.chdir(tmp_path)
        assert main(["."]) == 1
        assert "REP000" in capsys.readouterr().out


class TestJsonReport:
    def test_json_artifact_shape(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--format", "json", "-o", "report.json"]) == 1
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["version"] == 1
        assert report["files_analyzed"] == 1
        assert report["summary"] == {"total": 1, "by_rule": {"REP003": 1}}
        (finding,) = report["findings"]
        assert finding["rule"] == "REP003"
        assert finding["path"].endswith("service/pipe.py")
        assert finding["id"].startswith("REP003:")
        catalog = {rule["id"] for rule in report["rules"]}
        assert {"REP001", "REP006"} <= catalog


class TestBaselineWorkflow:
    def test_update_then_clean_then_stale(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)

        # Grandfather the existing violation.
        assert main([".", "--update-baseline"]) == 0
        baseline = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
        assert len(baseline["findings"]) == 1
        capsys.readouterr()

        # The default baseline in cwd is picked up automatically.
        assert main(["."]) == 0
        assert "1 baselined" in capsys.readouterr().out

        # Fixing the violation turns the entry stale: the baseline must
        # shrink as debt is paid, so this still fails the run.
        write_tree(tmp_path, CLEAN)
        assert main(["."]) == 1
        assert "stale baseline" in capsys.readouterr().out
        assert main([".", "--update-baseline"]) == 0
        assert main(["."]) == 0

    def test_explicit_baseline_path(self, tmp_path, monkeypatch):
        write_tree(tmp_path, VIOLATING)
        monkeypatch.chdir(tmp_path)
        assert main([".", "--update-baseline", "--baseline", "bl.json"]) == 0
        assert main([".", "--baseline", "bl.json"]) == 0
        assert main(["."]) == 1  # without the baseline the finding is live

    def test_corrupt_baseline_is_usage_error(
        self, tmp_path, monkeypatch, capsys
    ):
        write_tree(tmp_path, CLEAN)
        (tmp_path / "bl.json").write_text("{", encoding="utf-8")
        monkeypatch.chdir(tmp_path)
        assert main([".", "--baseline", "bl.json"]) == 2
        assert "invalid baseline" in capsys.readouterr().err
