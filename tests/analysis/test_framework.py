"""Framework behavior: suppressions, stable IDs, baseline round-trips."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, split_against_baseline
from repro.analysis.suppressions import parse_suppressions
from repro.errors import ConfigurationError

VIOLATION = {
    "service/pipe.py": """\
    def drain(q):
        return q.get()
    """
}


class TestSuppressions:
    def test_parse_inline_and_line_above(self):
        index = parse_suppressions(
            [
                "x = 1  # repro: ignore[REP003]",
                "# repro: ignore[REP001, REP002]",
                "y = 2",
            ]
        )
        assert index.is_suppressed("REP003", 1)
        assert index.is_suppressed("REP001", 3)  # comment on the line above
        assert index.is_suppressed("REP002", 3)
        assert not index.is_suppressed("REP003", 3)

    def test_bare_ignore_suppresses_every_rule(self):
        index = parse_suppressions(["q.get()  # repro: ignore — startup only"])
        assert index.is_suppressed("REP003", 1)
        assert index.is_suppressed("REP001", 1)

    def test_inline_suppression_hides_finding(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def drain(q):
                    return q.get()  # repro: ignore[REP003] — drained on close
                """
            },
            select=["REP003"],
        )
        assert findings == []

    def test_suppression_on_line_above_hides_finding(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def drain(q):
                    # repro: ignore[REP003] — producer joined first
                    return q.get()
                """
            },
            select=["REP003"],
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def drain(q):
                    return q.get()  # repro: ignore[REP001]
                """
            },
            select=["REP003"],
        )
        assert [f.rule for f in findings] == ["REP003"]

    def test_cross_file_findings_honour_suppressions(self, lint):
        findings = lint(
            {
                "faults.py": """\
                SITES = {"a.one": "first"}

                def check(site):
                    return None
                """,
                "service/mod.py": """\
                import faults

                def go():
                    # repro: ignore[REP004] — site registered dynamically
                    faults.check("c.three")
                    faults.check("a.one")
                """,
            },
            select=["REP004"],
        )
        assert findings == []


class TestStableIds:
    def test_duplicate_findings_get_distinct_ids(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def drain(q):
                    q.get()
                    q.get()
                """
            },
            select=["REP003"],
        )
        ids = [f.stable_id for f in findings]
        assert len(ids) == 2
        assert len(set(ids)) == 2
        assert [f.occurrence for f in findings] == [0, 1]

    def test_ids_survive_line_shifts(self, lint, tmp_path):
        before = lint(VIOLATION, select=["REP003"])
        shifted = {
            "service/pipe.py": """\
            # a new leading comment
            # shifting everything down

            def drain(q):
                return q.get()
            """
        }
        after = lint(shifted, select=["REP003"])
        assert [f.stable_id for f in before] == [f.stable_id for f in after]
        assert before[0].line != after[0].line


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, lint, tmp_path):
        findings = lint(VIOLATION, select=["REP003"])
        path = tmp_path / "baseline.json"
        Baseline.save(str(path), findings)
        fresh, known, stale = split_against_baseline(
            findings, Baseline.load(str(path))
        )
        assert fresh == []
        assert [f.stable_id for f in known] == [f.stable_id for f in findings]
        assert stale == []

    def test_fixed_finding_goes_stale(self, lint, tmp_path):
        findings = lint(VIOLATION, select=["REP003"])
        path = tmp_path / "baseline.json"
        Baseline.save(str(path), findings)
        fresh, known, stale = split_against_baseline(
            [], Baseline.load(str(path))
        )
        assert fresh == [] and known == []
        assert stale == [findings[0].stable_id]

    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "nope.json"))
        assert baseline.ids == frozenset()

    def test_invalid_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid baseline"):
            Baseline.load(str(bad))
        bad.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(ConfigurationError, match="v1"):
            Baseline.load(str(bad))
