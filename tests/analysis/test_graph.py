"""Phase-1 call-graph builder: resolution fixtures and the real-tree gate."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.graph import (
    ProjectGraph,
    build_graph,
    load_cached,
    module_name_for,
    signature_tokens,
)
from repro.analysis.visitor import iter_python_files
from tests.analysis.conftest import write_tree

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Ceiling for resolver misses over the real tree.  The graph currently
#: builds with **zero** unresolved edges; a small allowance keeps honest
#: future code from flapping CI, while a resolver regression (dozens of
#: misses) still fails loudly.
UNRESOLVED_EDGE_THRESHOLD = 3


def build(tmp_path, files):
    write_tree(tmp_path, files)
    return build_graph(iter_python_files([str(tmp_path)]), root=str(tmp_path))


def edge_pairs(graph):
    return {
        (edge.caller, edge.callee)
        for edges in graph.edges.values()
        for edge in edges
    }


class TestModuleNaming:
    def test_plain_module(self):
        assert module_name_for("pkg/mod.py") == "pkg.mod"

    def test_package_init(self):
        assert module_name_for("pkg/sub/__init__.py") == "pkg.sub"

    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/core/models.py") == (
            "repro.core.models"
        )


class TestSignatureTokens:
    def test_kinds_and_optionality(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": """\
                def f(a, b=1, *rest, c, d=2, **kw):
                    return a
                """
            },
        )
        assert graph.functions["m.f"].signature == (
            "a", "b=?", "*rest", "c", "d=?", "**kw"
        )

    def test_positional_only_marker(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": """\
                def f(a, /, b):
                    return a + b
                """
            },
        )
        assert graph.functions["m.f"].signature == ("a", "/", "b")


class TestResolution:
    def test_aliased_import_resolves_to_definition(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": """\
                def helper():
                    return 1
                """,
                "pkg/main.py": """\
                from pkg import util as u

                def run():
                    return u.helper()
                """,
            },
        )
        assert ("pkg.main.run", "pkg.util.helper") in edge_pairs(graph)
        assert graph.unresolved == []

    def test_reexport_through_init(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.impl import helper\n",
                "pkg/impl.py": """\
                def helper():
                    return 1
                """,
                "app.py": """\
                from pkg import helper

                def run():
                    return helper()
                """,
            },
        )
        assert ("app.run", "pkg.impl.helper") in edge_pairs(graph)
        assert graph.unresolved == []

    def test_relative_import_resolves(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """\
                def leaf():
                    return 1
                """,
                "pkg/b.py": """\
                from . import a
                from .a import leaf as renamed

                def via_module():
                    return a.leaf()

                def via_alias():
                    return renamed()
                """,
            },
        )
        pairs = edge_pairs(graph)
        assert ("pkg.b.via_module", "pkg.a.leaf") in pairs
        assert ("pkg.b.via_alias", "pkg.a.leaf") in pairs
        assert graph.unresolved == []

    def test_self_method_and_inherited_method(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": """\
                class Base:
                    def shared(self):
                        return 1

                class Impl(Base):
                    def run(self):
                        return self.shared() + self.own()

                    def own(self):
                        return 2
                """
            },
        )
        pairs = edge_pairs(graph)
        assert ("m.Impl.run", "m.Base.shared") in pairs
        assert ("m.Impl.run", "m.Impl.own") in pairs

    def test_constructor_edge_reaches_init(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": """\
                class Thing:
                    def __init__(self, x):
                        self.x = x

                def make():
                    return Thing(1)
                """
            },
        )
        assert ("m.make", "m.Thing.__init__") in edge_pairs(graph)

    def test_cycle_does_not_hang(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """\
                from pkg import b

                def ping(n):
                    return b.pong(n - 1) if n else 0
                """,
                "pkg/b.py": """\
                from pkg import a

                def pong(n):
                    return a.ping(n - 1) if n else 0
                """,
            },
        )
        pairs = edge_pairs(graph)
        assert ("pkg.a.ping", "pkg.b.pong") in pairs
        assert ("pkg.b.pong", "pkg.a.ping") in pairs
        assert graph.unresolved == []

    def test_external_reference_recorded(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": """\
                import time

                def now():
                    return time.time()
                """
            },
        )
        (ref,) = graph.external_refs("m.now")
        assert ref.target == "time.time"
        assert ref.is_call

    def test_dynamic_call_counted_not_unresolved(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "m.py": """\
                def run(callback):
                    return callback()
                """
            },
        )
        assert graph.unresolved == []
        assert graph.dynamic_calls == 1

    def test_module_constant_lookup_is_dynamic(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/data.py": "TABLE = {}\n",
                "pkg/use.py": """\
                from pkg.data import TABLE

                def fetch(key):
                    return TABLE.get(key)
                """,
            },
        )
        assert graph.unresolved == []
        assert graph.dynamic_calls == 1


class TestSerialization:
    def test_round_trip(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": """\
                import time

                def leaf():
                    return time.time()
                """,
                "pkg/b.py": """\
                from pkg.a import leaf

                def run():
                    return leaf()
                """,
            },
        )
        clone = ProjectGraph.from_dict(graph.to_dict())
        assert set(clone.functions) == set(graph.functions)
        assert edge_pairs(clone) == edge_pairs(graph)
        assert clone.external_refs("pkg.a.leaf")[0].target == "time.time"

    def test_cache_hit_and_invalidation(self, tmp_path):
        files = {
            "m.py": """\
            def f():
                return 1
            """
        }
        write_tree(tmp_path, files)
        file_list = iter_python_files([str(tmp_path)])
        graph = build_graph(file_list, root=str(tmp_path))
        cache = tmp_path / "graph.json"
        graph.save(str(cache))
        loaded = load_cached(str(cache), file_list, root=str(tmp_path))
        assert loaded is not None
        assert set(loaded.functions) == set(graph.functions)
        # Touching the file's content invalidates the fingerprint.
        (tmp_path / "m.py").write_text(
            "def f():\n    return 2\n", encoding="utf-8"
        )
        assert load_cached(str(cache), file_list, root=str(tmp_path)) is None


class TestRealTree:
    def test_real_graph_builds_within_unresolved_threshold(self):
        graph = build_graph(
            iter_python_files([str(REPO_ROOT / "src")]),
            root=str(REPO_ROOT),
        )
        misses = [
            f"{u.owner} -> {u.target} ({u.path}:{u.line})"
            for u in graph.unresolved
        ]
        assert len(misses) <= UNRESOLVED_EDGE_THRESHOLD, (
            "call-graph resolver regressed:\n" + "\n".join(misses)
        )
        # Sanity: the graph actually saw the engine.
        assert "repro.simmachine.engine.Simulator.run" in graph.functions
        stats = graph.stats()
        assert stats["functions"] > 500
        assert stats["edges"] > 500
