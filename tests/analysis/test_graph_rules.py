"""Phase-2 graph rules: REP010 transitive determinism, REP014 API parity."""

from __future__ import annotations

from repro.analysis.checks.apiparity import ApiParityRule, ParityGroup
from repro.analysis.rules import select_rules
from repro.analysis.visitor import Analyzer, iter_python_files
from tests.analysis.conftest import write_tree


def lint_tree(tmp_path, files, rules=None, select=None):
    write_tree(tmp_path, files)
    if rules is None:
        rules = select_rules(select) if select is not None else None
    analyzer = Analyzer(rules)
    findings = analyzer.run(
        iter_python_files([str(tmp_path)]), root=str(tmp_path)
    )
    return findings, analyzer


class TestTransitiveDeterminismREP010:
    TWO_HOPS = {
        "simmachine/__init__.py": "",
        "simmachine/clock.py": """\
        from util.timing import stamp

        def advance(state):
            return stamp(state)
        """,
        "util/__init__.py": "",
        "util/timing.py": """\
        import time

        def stamp(state):
            return raw()

        def raw():
            return time.time()
        """,
    }

    def test_two_hop_clock_is_flagged_with_witness(self, tmp_path):
        findings, _ = lint_tree(
            tmp_path, self.TWO_HOPS, select=["REP010"]
        )
        (finding,) = [f for f in findings if f.path.endswith("clock.py")]
        assert finding.rule == "REP010"
        assert "time.time" in finding.message
        # The witness path walks every hop down to the primitive.
        assert finding.witness == (
            "simmachine.clock.advance -> util.timing.stamp "
            "(simmachine/clock.py:4)",
            "util.timing.stamp -> util.timing.raw (util/timing.py:4)",
            "util.timing.raw -> time.time (util/timing.py:7)",
        )

    def test_direct_clock_is_rep001_territory(self, tmp_path):
        # A clock called *directly* in-tier is REP001's finding; REP010
        # must not double-report it.
        files = {
            "simmachine/__init__.py": "",
            "simmachine/clock.py": """\
            import time

            def now():
                return time.time()
            """,
        }
        findings, _ = lint_tree(tmp_path, files, select=["REP010"])
        assert findings == []
        findings, _ = lint_tree(tmp_path, files, select=["REP001"])
        assert [f.rule for f in findings] == ["REP001"]

    def test_direct_env_read_is_flagged(self, tmp_path):
        files = {
            "core/__init__.py": "",
            "core/config.py": """\
            import os

            def knob():
                return os.environ.get("REPRO_KNOB")
            """,
        }
        findings, _ = lint_tree(tmp_path, files, select=["REP010"])
        (finding,) = findings
        assert "os.environ" in finding.message

    def test_out_of_scope_caller_is_not_flagged(self, tmp_path):
        files = {
            "service/__init__.py": "",
            "service/front.py": """\
            import time

            def latency():
                return time.time()

            def handler():
                return latency()
            """,
        }
        findings, _ = lint_tree(tmp_path, files, select=["REP010"])
        assert findings == []

    def test_suppressed_seed_stops_taint(self, tmp_path):
        files = dict(self.TWO_HOPS)
        files["util/timing.py"] = """\
        import time

        def stamp(state):
            return raw()

        def raw():
            return time.time()  # repro: ignore[REP001] — host-time probe
        """
        findings, _ = lint_tree(tmp_path, files, select=["REP010"])
        assert findings == []

    def test_obs_modules_are_exempt_transmitters(self, tmp_path):
        files = {
            "simmachine/__init__.py": "",
            "simmachine/proc.py": """\
            from obs.tracing import span

            def step():
                span("step")
            """,
            "obs/__init__.py": "",
            "obs/tracing.py": """\
            import time

            def span(name):
                return time.perf_counter()
            """,
        }
        findings, _ = lint_tree(tmp_path, files, select=["REP010"])
        assert findings == []

    def test_finding_suppressible_at_the_call_site(self, tmp_path):
        files = dict(self.TWO_HOPS)
        files["simmachine/clock.py"] = """\
        from util.timing import stamp

        def advance(state):
            return stamp(state)  # repro: ignore[REP010] — test override
        """
        findings, _ = lint_tree(tmp_path, files, select=["REP010"])
        assert findings == []


PARITY_FIXTURE = {
    "engines/__init__.py": "",
    "engines/fast.py": """\
    class FastEngine:
        def run(self, workload, until=None):
            return workload

        def only_fast(self):
            return 1
    """,
    "engines/exact.py": """\
    class ExactEngine:
        def run(self, workload, until=None):
            return workload
    """,
}

PARITY_GROUP = ParityGroup(
    name="test-engines",
    members=("engines.fast.FastEngine", "engines.exact.ExactEngine"),
)


class TestApiParityREP014:
    def test_matching_shared_signatures_pass(self, tmp_path):
        findings, _ = lint_tree(
            tmp_path, PARITY_FIXTURE, rules=[ApiParityRule([PARITY_GROUP])]
        )
        assert findings == []

    def test_perturbed_signature_fails(self, tmp_path):
        files = dict(PARITY_FIXTURE)
        files["engines/exact.py"] = """\
        class ExactEngine:
            def run(self, workload, deadline=None):
                return workload
        """
        findings, _ = lint_tree(
            tmp_path, files, rules=[ApiParityRule([PARITY_GROUP])]
        )
        (finding,) = findings
        assert finding.rule == "REP014"
        assert "diverges" in finding.message
        assert "until=?" in finding.message and "deadline=?" in finding.message
        # Both definitions are named so the drifting side is obvious.
        assert any("FastEngine" in hop for hop in finding.witness)
        assert any("ExactEngine" in hop for hop in finding.witness)

    def test_unshared_names_do_not_require_parity(self, tmp_path):
        files = dict(PARITY_FIXTURE)
        files["engines/exact.py"] = """\
        class ExactEngine:
            def run(self, workload, until=None):
                return workload

            def only_exact(self):
                return 2
        """
        findings, _ = lint_tree(
            tmp_path, files, rules=[ApiParityRule([PARITY_GROUP])]
        )
        assert findings == []

    def test_private_methods_are_ignored(self, tmp_path):
        files = dict(PARITY_FIXTURE)
        files["engines/exact.py"] = """\
        class ExactEngine:
            def run(self, workload, until=None):
                return workload

            def _only_fast(self, different):
                return different
        """
        findings, _ = lint_tree(
            tmp_path, files, rules=[ApiParityRule([PARITY_GROUP])]
        )
        assert findings == []

    def test_committed_group_holds_on_real_tree(self):
        # The real tier engines must satisfy the committed contract.
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        analyzer = Analyzer(select_rules(["REP014"]))
        findings = analyzer.run(
            iter_python_files([str(repo / "src")]), root=str(repo)
        )
        assert findings == []
