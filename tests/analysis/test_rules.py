"""Per-rule fixture pairs: each rule fires on the violation, not the fix."""

from __future__ import annotations

import pytest

from repro.analysis import all_rules, select_rules


def rule_ids(findings):
    return [f.rule for f in findings]


class TestRegistry:
    def test_builtin_rules_present(self):
        ids = [cls.rule_id for cls in all_rules()]
        assert ids == sorted(ids)
        for expected in ("REP001", "REP002", "REP003", "REP004", "REP005",
                         "REP006", "REP007", "REP008", "REP009", "REP010",
                         "REP011", "REP012", "REP013", "REP014", "REP015"):
            assert expected in ids

    def test_every_rule_documented(self):
        for cls in all_rules():
            assert cls.name, cls.rule_id
            assert cls.description, cls.rule_id
            # A rule either visits AST nodes or consumes the call graph.
            assert cls.node_types or cls.needs_graph, cls.rule_id

    def test_select_is_case_insensitive(self):
        (rule,) = select_rules(["rep001"])
        assert rule.rule_id == "REP001"

    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="REP999"):
            select_rules(["REP999"])


class TestDeterminismREP001:
    def test_violations_in_deterministic_tier(self, lint):
        findings = lint(
            {
                "simmachine/clock.py": """\
                import time
                import random
                import numpy as np
                from time import perf_counter as pc

                def now():
                    return time.time()

                def tick():
                    return pc()

                def draw():
                    random.seed(0)
                    return random.random()

                def rng():
                    return np.random.default_rng()
                """
            },
            select=["REP001"],
        )
        assert rule_ids(findings) == ["REP001"] * 5
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "time.perf_counter" in messages
        assert "global RNG" in messages
        assert "without a seed" in messages

    def test_seeded_generators_pass(self, lint):
        findings = lint(
            {
                "npb/kernels.py": """\
                import random
                import numpy as np

                def draw(seed):
                    return random.Random(seed).random()

                def field(seed):
                    return np.random.default_rng(seed).standard_normal(4)
                """
            },
            select=["REP001"],
        )
        assert findings == []

    def test_rule_ignores_files_outside_the_tier(self, lint):
        findings = lint(
            {
                "util/clock.py": """\
                import time

                def now():
                    return time.time()
                """
            },
            select=["REP001"],
        )
        assert findings == []

    def test_faults_py_is_in_the_tier_by_name(self, lint):
        findings = lint(
            {
                "faults.py": """\
                import random

                def jitter():
                    return random.random()
                """
            },
            select=["REP001"],
        )
        assert rule_ids(findings) == ["REP001"]


class TestLockDisciplineREP002:
    VIOLATING = {
        "state.py": """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                self.count += 1
        """
    }

    def test_unguarded_mutation_flagged(self, lint):
        findings = lint(self.VIOLATING, select=["REP002"])
        assert rule_ids(findings) == ["REP002"]
        assert findings[0].scope == "Counter.bump"
        assert "self.count" in findings[0].message

    def test_guarded_mutation_passes(self, lint):
        findings = lint(
            {
                "state.py": """\
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1
                """
            },
            select=["REP002"],
        )
        assert findings == []

    def test_init_is_exempt_and_lockless_classes_ignored(self, lint):
        findings = lint(
            {
                "state.py": """\
                class Plain:
                    def __init__(self):
                        self.count = 0

                    def bump(self):
                        self.count += 1
                """
            },
            select=["REP002"],
        )
        assert findings == []

    def test_condition_counts_as_a_lock(self, lint):
        findings = lint(
            {
                "state.py": """\
                import threading

                class Queue:
                    def __init__(self):
                        self._cond = threading.Condition()
                        self.items = []

                    def put(self, item):
                        with self._cond:
                            self.items = self.items + [item]
                            self._cond.notify()

                    def mark(self):
                        self.dirty = True
                """
            },
            select=["REP002"],
        )
        assert rule_ids(findings) == ["REP002"]
        assert findings[0].scope == "Queue.mark"


class TestBlockingTimeoutsREP003:
    def test_argless_blocking_calls_flagged(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def drain(q, fut):
                    value = q.get()
                    return value, fut.result()
                """
            },
            select=["REP003"],
        )
        assert rule_ids(findings) == ["REP003", "REP003"]

    def test_timeouts_pass(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def drain(q, fut, thread):
                    value = q.get(timeout=1.0)
                    thread.join(2.0)
                    return value, fut.result(timeout=5.0)
                """
            },
            select=["REP003"],
        )
        assert findings == []

    def test_rule_only_applies_to_service_layer(self, lint):
        findings = lint(
            {
                "instrument/pipe.py": """\
                def drain(q):
                    return q.get()
                """
            },
            select=["REP003"],
        )
        assert findings == []

    def test_request_handler_without_timeout_flagged(self, lint):
        findings = lint(
            {
                "service/wire.py": """\
                import socketserver

                class Handler(socketserver.StreamRequestHandler):
                    def handle(self):
                        for raw in self.rfile:
                            self.wfile.write(raw)
                """
            },
            select=["REP003"],
        )
        assert rule_ids(findings) == ["REP003"]
        assert "timeout" in findings[0].message

    def test_request_handler_with_timeout_passes(self, lint):
        findings = lint(
            {
                "service/wire.py": """\
                import socketserver

                class Handler(socketserver.StreamRequestHandler):
                    timeout = 30.0

                    def handle(self):
                        for raw in self.rfile:
                            self.wfile.write(raw)
                """
            },
            select=["REP003"],
        )
        assert findings == []


class TestFaultSitesREP004:
    FAULTS = """\
    SITES = {
        "a.one": "first checkpoint",
        "b.two": "second checkpoint",
    }

    def check(site):
        return None
    """

    def test_drift_both_directions(self, lint):
        findings = lint(
            {
                "faults.py": self.FAULTS,
                "service/mod.py": """\
                import faults

                def go():
                    faults.check("a.one")
                    faults.check("c.three")
                """,
            },
            select=["REP004"],
        )
        assert rule_ids(findings) == ["REP004", "REP004"]
        by_path = {f.path: f.message for f in findings}
        assert "'c.three' is not registered" in by_path["service/mod.py"]
        assert "'b.two' is never passed" in by_path["faults.py"]

    def test_consistent_table_passes(self, lint):
        findings = lint(
            {
                "faults.py": self.FAULTS,
                "service/mod.py": """\
                import faults

                def go():
                    faults.check("a.one")
                    faults.check("b.two")
                """,
            },
            select=["REP004"],
        )
        assert findings == []

    def test_stands_down_without_faults_py(self, lint):
        findings = lint(
            {
                "service/mod.py": """\
                import faults

                def go():
                    faults.check("never.registered")
                """
            },
            select=["REP004"],
        )
        assert findings == []


class TestErrorTaxonomyREP005:
    def test_builtin_raise_on_wire_path_flagged(self, lint):
        findings = lint(
            {
                "service/api.py": """\
                def validate(n):
                    if n < 0:
                        raise ValueError(f"bad {n}")
                """
            },
            select=["REP005"],
        )
        assert rule_ids(findings) == ["REP005"]
        assert "ValueError" in findings[0].message

    def test_taxonomy_raise_passes(self, lint):
        findings = lint(
            {
                "service/api.py": """\
                from repro.errors import ConfigurationError

                def validate(n):
                    if n < 0:
                        raise ConfigurationError(f"bad {n}")
                    try:
                        return 1 / n
                    except ZeroDivisionError:
                        raise
                """
            },
            select=["REP005"],
        )
        assert findings == []

    def test_non_wire_files_exempt(self, lint):
        findings = lint(
            {
                "service/cache.py": """\
                def validate(n):
                    if n < 0:
                        raise ValueError(f"bad {n}")
                """
            },
            select=["REP005"],
        )
        assert findings == []


class TestPicklablePoolREP007:
    def test_lambda_submission_flagged(self, lint):
        findings = lint(
            {
                "parallel/executor.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(items):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(lambda: item) for item in items]
                """
            },
            select=["REP007"],
        )
        assert rule_ids(findings) == ["REP007"]
        assert "lambda" in findings[0].message

    def test_nested_function_flagged(self, lint):
        findings = lint(
            {
                "parallel/executor.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(items):
                    def work(item):
                        return item * 2

                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(work, items))
                """
            },
            select=["REP007"],
        )
        assert rule_ids(findings) == ["REP007"]
        assert "'work'" in findings[0].message

    def test_lock_argument_flagged_direct_and_via_name(self, lint):
        findings = lint(
            {
                "parallel/executor.py": """\
                import threading
                from concurrent.futures import ProcessPoolExecutor

                from repro.parallel.worker import run_cell

                shared = threading.Lock()

                def fan_out(specs):
                    with ProcessPoolExecutor() as pool:
                        pool.submit(run_cell, threading.Lock())
                        pool.submit(run_cell, shared)
                """
            },
            select=["REP007"],
        )
        assert rule_ids(findings) == ["REP007", "REP007"]
        messages = " ".join(f.message for f in findings)
        assert "threading.Lock" in messages
        assert "'shared'" in messages

    def test_tracer_argument_flagged(self, lint):
        findings = lint(
            {
                "parallel/executor.py": """\
                from concurrent.futures import ProcessPoolExecutor

                from repro import obs
                from repro.parallel.worker import run_cell

                def fan_out(spec):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(run_cell, spec, obs.get_tracer())
                """
            },
            select=["REP007"],
        )
        assert rule_ids(findings) == ["REP007"]
        assert "get_tracer" in findings[0].message

    def test_module_level_callable_with_plain_specs_passes(self, lint):
        findings = lint(
            {
                "parallel/executor.py": """\
                from concurrent.futures import ProcessPoolExecutor

                from repro.parallel.worker import run_cell

                def fan_out(specs):
                    with ProcessPoolExecutor() as pool:
                        futures = [pool.submit(run_cell, s) for s in specs]
                    return [f.result(timeout=600.0) for f in futures]
                """
            },
            select=["REP007"],
        )
        assert findings == []

    def test_rule_only_applies_to_parallel_layer(self, lint):
        findings = lint(
            {
                "service/workers.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def fan_out(items):
                    with ProcessPoolExecutor() as pool:
                        return [pool.submit(lambda: item) for item in items]
                """
            },
            select=["REP007"],
        )
        assert findings == []


class TestBroadExceptREP006:
    def test_uncommented_broad_catch_flagged(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def swallow(fn):
                    try:
                        return fn()
                    except Exception:
                        return None
                """
            },
            select=["REP006"],
        )
        assert rule_ids(findings) == ["REP006"]

    def test_justified_or_narrow_catches_pass(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def swallow(fn):
                    try:
                        return fn()
                    except KeyError:
                        return None
                    except Exception:  # degrade: every failure means miss
                        return None
                """
            },
            select=["REP006"],
        )
        assert findings == []

    def test_bare_and_tuple_forms_are_broad(self, lint):
        findings = lint(
            {
                "service/pipe.py": """\
                def swallow(fn):
                    try:
                        return fn()
                    except (ValueError, BaseException):
                        return None
                """
            },
            select=["REP006"],
        )
        assert rule_ids(findings) == ["REP006"]


class TestTierPurityREP008:
    def test_engine_imports_in_analytic_tier(self, lint):
        findings = lint(
            {
                "analytic/model.py": """\
                import repro.simmachine.engine
                from repro.simmachine.engine import Machine
                from repro.simmachine import engine
                from ..simmachine.engine import Machine as M
                from ..simmachine import engine as eng
                """
            },
            select=["REP008"],
        )
        assert rule_ids(findings) == ["REP008"] * 5

    def test_allowed_simmachine_imports(self, lint):
        findings = lint(
            {
                "analytic/model.py": """\
                from repro.simmachine.machine import MachineConfig
                from repro.simmachine.memory import MemoryHierarchy
                from repro.simmachine import machine
                """
            },
            select=["REP008"],
        )
        assert findings == []

    def test_engine_imports_outside_analytic_are_fine(self, lint):
        findings = lint(
            {
                "instrument/runner.py": """\
                from repro.simmachine.engine import Machine
                """
            },
            select=["REP008"],
        )
        assert findings == []

    def test_real_analytic_package_is_clean(self):
        import os

        from repro import analytic
        from repro.analysis import analyze_paths, select_rules

        pkg_dir = os.path.dirname(analytic.__file__)
        src_root = os.path.dirname(os.path.dirname(pkg_dir))
        findings = analyze_paths(
            [pkg_dir], rules=select_rules(["REP008"]), root=src_root
        )
        assert findings == []


class TestObsDisciplineREP009:
    def test_spans_and_profile_imports_on_hot_path(self, lint):
        findings = lint(
            {
                "simmachine/engine.py": """\
                import repro.obs.profile
                from repro.obs import profile
                from repro.obs.profile import SamplingProfiler
                from ..obs import profile as prof
                from repro import obs

                def run_all(self):
                    with obs.span("engine.step"):
                        pass
                """
            },
            select=["REP009"],
        )
        assert rule_ids(findings) == ["REP009"] * 5

    def test_memory_is_also_hot(self, lint):
        findings = lint(
            {
                "simmachine/memory.py": """\
                from repro.obs.tracing import span

                def touch(self):
                    with span("mem.touch"):
                        pass
                """
            },
            select=["REP009"],
        )
        assert rule_ids(findings) == ["REP009"]

    def test_allowed_obs_uses_pass(self, lint):
        # Logging and counters are fine; so is obs elsewhere in simmachine.
        findings = lint(
            {
                "simmachine/engine.py": """\
                from repro.obs.logging import get_logger
                from repro import obs

                def run_all(self):
                    obs.counter("events").inc()
                """,
                "simmachine/process.py": """\
                from repro import obs

                def run(self):
                    with obs.span("sim.run"):
                        pass
                """,
            },
            select=["REP009"],
        )
        assert findings == []

    def test_suppression_comment_is_honoured(self, lint):
        findings = lint(
            {
                "simmachine/engine.py": """\
                from repro.obs import profile  # repro: ignore[REP009] bench seam
                """
            },
            select=["REP009"],
        )
        assert findings == []

    def test_real_hot_path_is_clean(self):
        import os

        from repro import simmachine
        from repro.analysis import analyze_paths, select_rules

        pkg_dir = os.path.dirname(simmachine.__file__)
        src_root = os.path.dirname(os.path.dirname(pkg_dir))
        findings = analyze_paths(
            [pkg_dir], rules=select_rules(["REP009"]), root=src_root
        )
        assert findings == []


class TestAwaitUnderSyncLockREP011:
    def test_await_under_sync_lock_fires(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                async def handler(self):
                    with self._lock:
                        await self.flush()
                """
            },
            select=["REP011"],
        )
        assert rule_ids(findings) == ["REP011"]

    def test_async_with_asyncio_lock_is_fine(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                async def handler(self):
                    async with self._lock:
                        await self.flush()
                """
            },
            select=["REP011"],
        )
        assert findings == []

    def test_threading_lock_constructor_in_with_fires(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import threading

                async def handler(self):
                    with threading.Lock():
                        await self.flush()
                """
            },
            select=["REP011"],
        )
        assert rule_ids(findings) == ["REP011"]

    def test_non_lock_context_manager_is_fine(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                async def handler(self, path):
                    with self.session() as s:
                        await s.flush()
                """
            },
            select=["REP011"],
        )
        assert findings == []

    def test_with_in_nested_sync_def_does_not_span_await(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                def outer(self):
                    with self._lock:
                        async def inner():
                            await flush()
                        return inner
                """
            },
            select=["REP011"],
        )
        # The `with` belongs to the sync outer function; by the time
        # `inner` awaits, outer has returned and the lock is released.
        assert findings == []

    def test_outside_service_is_ignored(self, lint):
        findings = lint(
            {
                "parallel/pool.py": """\
                async def handler(self):
                    with self._lock:
                        await self.flush()
                """
            },
            select=["REP011"],
        )
        assert findings == []


class TestBlockingInAsyncREP012:
    def test_time_sleep_in_async_def_fires(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import time

                async def handler(self):
                    time.sleep(0.1)
                """
            },
            select=["REP012"],
        )
        assert rule_ids(findings) == ["REP012"]

    def test_socket_and_sqlite_and_open_fire(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import socket
                import sqlite3

                async def handler(self, path):
                    sock = socket.create_connection(("h", 1))
                    db = sqlite3.connect(path)
                    with open(path) as fh:
                        return fh.read()
                """
            },
            select=["REP012"],
        )
        assert rule_ids(findings) == ["REP012"] * 3

    def test_run_in_executor_handoff_is_fine(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import asyncio

                async def handler(self, loop, shard_id):
                    await loop.run_in_executor(None, self.respawn, shard_id)
                    await asyncio.to_thread(self.manager.respawn, shard_id)
                """
            },
            select=["REP012"],
        )
        assert findings == []

    def test_sync_def_in_service_is_fine(self, lint):
        findings = lint(
            {
                "service/client.py": """\
                import time

                def retry(self):
                    time.sleep(0.5)
                """
            },
            select=["REP012"],
        )
        assert findings == []

    def test_asyncio_sleep_is_fine(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import asyncio

                async def handler(self):
                    await asyncio.sleep(0.1)
                """
            },
            select=["REP012"],
        )
        assert findings == []


class TestUnretainedTaskREP013:
    def test_discarded_create_task_fires(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import asyncio

                async def handler(self):
                    asyncio.create_task(self.flush())
                """
            },
            select=["REP013"],
        )
        assert rule_ids(findings) == ["REP013"]

    def test_discarded_ensure_future_fires(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import asyncio

                async def handler(self):
                    asyncio.ensure_future(self.flush())
                """
            },
            select=["REP013"],
        )
        assert rule_ids(findings) == ["REP013"]

    def test_retained_task_is_fine(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import asyncio

                async def handler(self):
                    task = asyncio.create_task(self.flush())
                    self._tasks.add(task)
                    await task
                """
            },
            select=["REP013"],
        )
        assert findings == []

    def test_awaited_inline_is_fine(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                import asyncio

                async def handler(self):
                    await asyncio.create_task(self.flush())
                """
            },
            select=["REP013"],
        )
        assert findings == []

    def test_loop_method_spelling_fires(self, lint):
        findings = lint(
            {
                "service/front.py": """\
                async def handler(self, loop):
                    loop.create_task(self.flush())
                """
            },
            select=["REP013"],
        )
        assert rule_ids(findings) == ["REP013"]


class TestCompiledSurfaceREP015:
    def test_module_getattr_fires(self, lint):
        findings = lint(
            {
                "simmachine/engine.py": """\
                def __getattr__(name):
                    raise AttributeError(name)
                """
            },
            select=["REP015"],
        )
        assert rule_ids(findings) == ["REP015"]

    def test_getattr_rebinding_fires(self, lint):
        findings = lint(
            {
                "simmachine/network.py": """\
                def _lazy(name):
                    raise AttributeError(name)

                __getattr__ = _lazy
                """
            },
            select=["REP015"],
        )
        assert rule_ids(findings) == ["REP015"]

    def test_class_getattr_is_fine(self, lint):
        # Only the *module-level* hook is mypyc-hostile.
        findings = lint(
            {
                "simmachine/engine.py": """\
                class Proxy:
                    def __getattr__(self, name):
                        return getattr(self._inner, name)
                """
            },
            select=["REP015"],
        )
        assert findings == []

    def test_globals_mutation_fires(self, lint):
        findings = lint(
            {
                "simmachine/memory.py": """\
                globals()["LINE_BYTES"] = 128
                globals().update(LINE_BYTES=128)
                globals().pop("LINE_BYTES", None)
                del globals()["LINE_BYTES"]
                """
            },
            select=["REP015"],
        )
        assert rule_ids(findings) == ["REP015"] * 4

    def test_globals_read_is_fine(self, lint):
        findings = lint(
            {
                "simmachine/memory.py": """\
                def exports():
                    return sorted(globals())

                _have_numpy = "np" in globals()
                """
            },
            select=["REP015"],
        )
        assert findings == []

    def test_monkeypatch_on_module_class_fires(self, lint):
        findings = lint(
            {
                "simmpi/comm.py": """\
                class Communicator:
                    def send(self, msg):
                        return msg

                def _fast_send(self, msg):
                    return msg

                Communicator.send = _fast_send
                setattr(Communicator, "recv", _fast_send)
                """
            },
            select=["REP015"],
        )
        assert rule_ids(findings) == ["REP015"] * 2

    def test_instance_and_foreign_attributes_are_fine(self, lint):
        findings = lint(
            {
                "simmachine/engine.py": """\
                import config

                class Simulator:
                    def __init__(self):
                        self.now = 0.0

                config.verbose = True

                def tune(sim):
                    sim.now = 0.0
                    setattr(sim, "now", 0.0)
                """
            },
            select=["REP015"],
        )
        assert findings == []

    def test_off_surface_files_are_ignored(self, lint):
        findings = lint(
            {
                "simmachine/machine.py": """\
                def __getattr__(name):
                    raise AttributeError(name)
                """,
                "obs/ledger.py": """\
                globals()["X"] = 1
                """,
            },
            select=["REP015"],
        )
        assert findings == []

    def test_suppression_comment_is_honoured(self, lint):
        findings = lint(
            {
                "simmachine/engine.py": """\
                def __getattr__(name):  # repro: ignore[REP015] deprecation shim
                    raise AttributeError(name)
                """
            },
            select=["REP015"],
        )
        assert findings == []

    def test_real_compiled_surface_is_clean(self):
        import os

        from repro import simmachine, simmpi
        from repro.analysis import analyze_paths, select_rules

        dirs = [
            os.path.dirname(simmachine.__file__),
            os.path.dirname(simmpi.__file__),
        ]
        src_root = os.path.dirname(os.path.dirname(dirs[0]))
        findings = analyze_paths(
            dirs, rules=select_rules(["REP015"]), root=src_root
        )
        assert findings == []
