"""Meta-test: the repository's own source tree passes its invariant checks.

This is the CI gate in tier 1: every REP rule runs over ``src/`` and the
committed baseline must cover anything that isn't fixed or suppressed.
Today the baseline is empty — keep it that way; prefer a justified inline
suppression over a baseline entry for intentional exceptions.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, analyze_paths, split_against_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_source_tree_has_no_unbaselined_findings():
    findings = analyze_paths(
        [str(REPO_ROOT / "src")], root=str(REPO_ROOT)
    )
    baseline = Baseline.load(str(REPO_ROOT / "analysis-baseline.json"))
    fresh, _known, stale = split_against_baseline(findings, baseline)
    assert fresh == [], "new analysis findings:\n" + "\n".join(
        f"  {f.location()}: {f.rule} {f.message}" for f in fresh
    )
    assert stale == [], f"stale baseline entries: {stale}"


def test_committed_baseline_is_empty():
    baseline = Baseline.load(str(REPO_ROOT / "analysis-baseline.json"))
    assert baseline.ids == frozenset()
