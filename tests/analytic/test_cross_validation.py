"""Golden-table cross-validation: analytic closed forms vs simulation.

The documented accuracy contract (:data:`ANALYTIC_REL_ERROR_BOUND`) is that
on the golden BT/SP/LU tables the analytic tier's per-kernel ``E_k``, chain
times, and application total stay within the bound of the simulation ground
truth. Class-W cells keep this tier-1 fast (< 1 s of simulation total); the
``bench-tiers`` job cross-validates the expensive class-A cells.
"""

from __future__ import annotations

import pytest

from repro.analytic.model import ANALYTIC_REL_ERROR_BOUND, AnalyticPredictor
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.simmachine.machine import ibm_sp_argonne

GOLDEN_CELLS = [("BT", "W", 4), ("SP", "W", 4), ("LU", "W", 4)]


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings(
        measurement=MeasurementConfig(repetitions=4, warmup=1)
    )


@pytest.mark.parametrize(
    "bench,problem_class,nprocs",
    GOLDEN_CELLS,
    ids=[f"{b}-{c}-{p}" for b, c, p in GOLDEN_CELLS],
)
class TestGoldenCrossValidation:
    def test_analytic_matches_simulation_within_bound(
        self, settings, bench, problem_class, nprocs
    ):
        simulated = ExperimentPipeline(settings).config_result(
            bench, problem_class, nprocs, (2,)
        )
        analytic = AnalyticPredictor.for_config(
            ibm_sp_argonne(), bench, problem_class, nprocs
        ).report((2,))

        for kernel, actual in simulated.inputs.loop_times.items():
            rel = abs(analytic.inputs.loop_times[kernel] - actual) / actual
            assert rel <= ANALYTIC_REL_ERROR_BOUND, (
                f"E_k for {kernel}: {rel:.3f} above bound"
            )
        for window, actual in simulated.inputs.chain_times.items():
            rel = abs(analytic.inputs.chain_times[window] - actual) / actual
            assert rel <= ANALYTIC_REL_ERROR_BOUND, (
                f"chain {window}: {rel:.3f} above bound"
            )
        app_rel = abs(analytic.actual - simulated.actual) / simulated.actual
        assert app_rel <= ANALYTIC_REL_ERROR_BOUND, (
            f"application total: {app_rel:.3f} above bound"
        )
