"""The tiered-serving ladder end to end: pipeline, service, memo keys."""

from __future__ import annotations

import pytest

from repro import quick_prediction
from repro.analytic.tiers import POLICIES, TierPolicy
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.parallel.keys import SCHEMA_VERSION, cell_key, digest
from repro.service import PredictionService
from repro.service.engine import PredictRequest
from repro.simmachine.machine import ibm_sp_argonne


def _settings(repetitions=2):
    return ExperimentSettings(
        measurement=MeasurementConfig(repetitions=repetitions, warmup=1)
    )


def _service(**kwargs):
    kwargs.setdefault(
        "measurement", MeasurementConfig(repetitions=2, warmup=1)
    )
    kwargs.setdefault("executor", "inline")
    kwargs.setdefault("batch_window", 0.0)
    return PredictionService(**kwargs)


class TestPipelineLadder:
    def test_fast_policy_answers_analytically(self):
        pipeline = ExperimentPipeline(_settings(), tier_policy="fast")
        result = pipeline.config_result("BT", "W", 4, (2,))
        assert result.tier == "analytic"
        assert result.actual > 0
        assert result.coupling_prediction(2) > 0

    def test_exact_policy_is_bit_identical_to_the_pre_ladder_path(self):
        default = ExperimentPipeline(_settings()).config_result(
            "BT", "S", 4, (2,)
        )
        exact = ExperimentPipeline(
            _settings(), tier_policy="exact"
        ).config_result("BT", "S", 4, (2,))
        assert exact.tier == "simulation"
        assert exact.actual == default.actual
        assert exact.inputs == default.inputs

    def test_unsupported_benchmark_escalates_to_simulation(self):
        pipeline = ExperimentPipeline(_settings(), tier_policy="fast")
        result = pipeline.config_result("CG", "S", 4, (2,))
        assert result.tier == "simulation"

    def test_low_confidence_escalates_to_simulation(self):
        tight = TierPolicy("tight", use_analytic=True, max_rel_error=1e-6)
        pipeline = ExperimentPipeline(_settings(), tier_policy=tight)
        result = pipeline.config_result("BT", "S", 4, (2,))
        assert result.tier == "simulation"

    def test_quick_prediction_carries_the_tier(self):
        fast = quick_prediction("BT", "W", 4, 2, _settings(), tier="fast")
        assert fast.tier == "analytic"
        exact = quick_prediction("BT", "S", 4, 2, _settings(), tier="exact")
        assert exact.tier == "simulation"


class TestServiceLadder:
    def test_fast_policy_serves_analytic_and_counts_it(self):
        with _service(tier_policy="fast") as service:
            report = service.predict(PredictRequest("BT", "W", 4))
            assert report.tier == "analytic"
            repeat = service.predict(PredictRequest("BT", "W", 4))
            assert repeat is report  # L1-cached analytic answer
            stats = service.stats()
        assert stats["tier_requests"]["analytic"] == 2
        assert stats["tier_requests"]["simulation"] == 0
        assert stats["tier_latency_seconds"]["analytic"]["count"] == 2
        assert stats["analytic_escalations"] == 0

    def test_exact_policy_bypasses_the_analytic_tier(self):
        with _service(tier_policy="exact") as service:
            report = service.predict(PredictRequest("BT", "S", 4))
            assert report.tier == "simulation"
            stats = service.stats()
        assert stats["tier_requests"]["analytic"] == 0
        assert stats["tier_requests"]["simulation"] == 1
        assert stats["tier_latency_seconds"]["simulation"]["count"] == 1

    def test_low_confidence_escalates_and_scores_signed_error(self):
        tight = TierPolicy("tight", use_analytic=True, max_rel_error=1e-6)
        with _service(tier_policy=tight) as service:
            report = service.predict(PredictRequest("BT", "S", 4))
            assert report.tier == "simulation"
            stats = service.stats()
        assert stats["analytic_escalations"] == 1
        assert stats["tier_requests"]["simulation"] == 1
        # Ground truth just landed, so the analytic answer was scored
        # against it — live cross-validation of the confidence model.
        signed = stats["analytic_signed_rel_error"]
        assert signed["count"] == 1
        assert abs(signed["mean"]) < 1.0

    def test_unsupported_benchmark_escalates(self):
        with _service(tier_policy="fast") as service:
            report = service.predict(PredictRequest("CG", "S", 4))
            assert report.tier == "simulation"
            stats = service.stats()
        assert stats["analytic_escalations"] == 1

    def test_memo_rung_attributes_warm_cells(self, tmp_path):
        cache_dir = str(tmp_path / "memo")
        request = PredictRequest("BT", "S", 4)
        with _service(tier_policy="exact", cache_dir=cache_dir) as service:
            cold = service.predict(request)
            assert cold.tier == "simulation"
        with _service(tier_policy="exact", cache_dir=cache_dir) as warm:
            hit = warm.predict(request)
            assert hit.tier == "memo"
            stats = warm.stats()
        assert stats["tier_requests"]["memo"] == 1
        assert cold.actual == hit.actual  # memoized ground truth, bit-equal

    def test_default_policy_is_exact(self):
        with _service() as service:
            assert service.tier_policy is POLICIES["exact"]


class TestMemoKeyMaterial:
    def test_schema_version_bumped_for_tiered_keys(self):
        assert SCHEMA_VERSION == 2

    def test_cell_key_carries_the_tier(self):
        machine = ibm_sp_argonne()
        measurement = MeasurementConfig(repetitions=2, warmup=1)
        base = cell_key(machine, measurement, "BT", "S", 4, (2,), 7)
        assert base["schema"] == SCHEMA_VERSION
        assert base["tier"] == "simulation"
        analytic = cell_key(
            machine, measurement, "BT", "S", 4, (2,), 7, tier="analytic"
        )
        assert analytic["tier"] == "analytic"
        assert digest(base) != digest(analytic)
