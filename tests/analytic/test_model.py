"""The analytic model itself: descriptors, closed forms, confidence."""

from __future__ import annotations

import pytest

from repro.analytic.descriptors import SUPPORTED_BENCHMARKS, describe
from repro.analytic.model import (
    ANALYTIC_REL_ERROR_BOUND,
    AnalyticModel,
    AnalyticPredictor,
)
from repro.analytic.tiers import TIER_ANALYTIC
from repro.errors import PredictionError
from repro.npb import make_benchmark
from repro.simmachine.machine import ibm_sp_argonne


def _predictor(benchmark="BT", problem_class="W", nprocs=4):
    return AnalyticPredictor.for_config(
        ibm_sp_argonne(), benchmark, problem_class, nprocs
    )


class TestDescriptors:
    def test_supported_benchmarks(self):
        assert set(SUPPORTED_BENCHMARKS) == {"BT", "SP", "LU"}

    @pytest.mark.parametrize("name", ["CG", "MG"])
    def test_unsupported_benchmark_raises_prediction_error(self, name):
        with pytest.raises(PredictionError, match=name):
            describe(make_benchmark(name, "S", 4))

    def test_descriptors_cover_every_kernel(self):
        for name in SUPPORTED_BENCHMARKS:
            bench = make_benchmark(name, "S", 4)
            desc = describe(bench)
            assert desc.loop_kernels == tuple(bench.loop_kernel_names)
            assert desc.pre_kernels == tuple(bench.pre_kernel_names)
            assert desc.post_kernels == tuple(bench.post_kernel_names)
            for kernel in desc.kernels.values():
                assert len(kernel.ranks) == 4


class TestAnalyticModel:
    def test_rank_classes_collapse_uniform_partitions(self):
        # 16 ranks of BT A decompose uniformly: one replayed hierarchy
        # serves them all — the reason the fast path is fast.
        predictor = _predictor("BT", "A", 16)
        model = AnalyticModel(predictor.profile, predictor.desc)
        assert len(model._hiers) < 16

    def test_isolated_times_positive_and_deterministic(self):
        predictor = _predictor()
        a = AnalyticModel(predictor.profile, predictor.desc)
        b = AnalyticModel(predictor.profile, predictor.desc)
        for kernel in predictor.desc.loop_kernels:
            ta, tb = a.isolated_time(kernel), b.isolated_time(kernel)
            assert ta > 0
            assert ta == tb

    def test_chain_state_is_cyclic_steady_after_one_warm_pass(self):
        # chain_time warms one full cycle; a second warm pass must leave
        # the evaluated cycle bit-identical, or the steady-state claim
        # (and the coupling ratios built on it) would be wrong.
        predictor = _predictor()
        desc = predictor.desc
        window = desc.loop_kernels[:2]
        one_warm = AnalyticModel(predictor.profile, desc).chain_time(window)

        extra = AnalyticModel(predictor.profile, desc)
        extra._flush()
        for _ in range(3):
            for k in window:
                extra._replay(k)
        fns = []
        messages = 0
        for k in window:
            fn, _work = extra._eval_kernel(k)
            fns.append(fn)
            messages += desc.kernels[k].messages
        three_warm = extra._settle(
            lambda c: sum(fn(c) for fn in fns), messages
        )
        assert one_warm == three_warm

    def test_expected_rel_error_is_positive_and_bounded_on_goldens(self):
        for benchmark in SUPPORTED_BENCHMARKS:
            predictor = _predictor(benchmark, "W", 4)
            model = AnalyticModel(predictor.profile, predictor.desc)
            err = model.expected_rel_error()
            assert 0 < err < 1


class TestAnalyticPredictor:
    def test_report_structure(self):
        report = _predictor().report((2,))
        desc = _predictor().desc
        assert set(report.inputs.loop_times) == set(desc.loop_kernels)
        assert set(report.inputs.pre_times) == set(desc.pre_kernels)
        assert set(report.inputs.post_times) == set(desc.post_kernels)
        assert len(report.inputs.chain_times) == len(desc.loop_kernels)
        assert report.actual > 0
        assert report.steady_cycle > 0
        assert 0 < report.expected_rel_error < 1

    def test_prediction_report_carries_the_analytic_tier(self):
        report = _predictor().report((2,)).prediction_report((2,))
        assert report.tier == TIER_ANALYTIC
        assert "Summation" in report.predictions
        assert "Coupling: 2 kernels" in report.predictions

    @pytest.mark.parametrize("length", [1, 99])
    def test_invalid_chain_length_raises(self, length):
        with pytest.raises(PredictionError, match="chain length"):
            _predictor().report((length,))

    def test_documented_bound_is_a_real_constant(self):
        assert 0 < ANALYTIC_REL_ERROR_BOUND <= 0.2
