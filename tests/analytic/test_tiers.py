"""Tier labels and policy parsing."""

from __future__ import annotations

import math

import pytest

from repro.analytic.tiers import (
    POLICIES,
    TIER_ANALYTIC,
    TIER_MEMO,
    TIER_SIMULATION,
    TIERS,
    TierPolicy,
    policy_names,
    resolve_tier_policy,
    tier_policy_name,
)
from repro.errors import ConfigurationError


class TestTierLabels:
    def test_ladder_order(self):
        assert TIERS == (TIER_ANALYTIC, TIER_MEMO, TIER_SIMULATION)

    def test_builtin_policy_names(self):
        assert policy_names() == ["balanced", "exact", "fast"]
        assert set(POLICIES) == {"fast", "balanced", "exact"}


class TestResolveTierPolicy:
    @pytest.mark.parametrize("spelling", ["fast", "FAST", "Fast", "fAsT"])
    def test_case_insensitive(self, spelling):
        assert resolve_tier_policy(spelling) is POLICIES["fast"]

    @pytest.mark.parametrize("spelling", ["EXACT", "Balanced"])
    def test_other_policies_normalize(self, spelling):
        policy = resolve_tier_policy(spelling)
        assert policy.name == spelling.lower()

    @pytest.mark.parametrize("bad", ["bogus", "", "fastest", "exactly"])
    def test_unknown_names_raise_configuration_error(self, bad):
        with pytest.raises(ConfigurationError, match="tier policy"):
            resolve_tier_policy(bad)

    def test_policy_instances_pass_through(self):
        policy = TierPolicy("custom", use_analytic=True, max_rel_error=0.2)
        assert resolve_tier_policy(policy) is policy


class TestTierPolicyNameCallback:
    def test_returns_canonical_name(self):
        assert tier_policy_name("BALANCED") == "balanced"
        assert tier_policy_name("exact") == "exact"

    def test_unknown_name_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            tier_policy_name("warp-speed")


class TestTierPolicy:
    def test_exact_bypasses_the_analytic_tier(self):
        policy = POLICIES["exact"]
        assert not policy.use_analytic
        assert not policy.accepts(0.0)

    def test_fast_accepts_any_confidence(self):
        policy = POLICIES["fast"]
        assert policy.use_analytic
        assert math.isinf(policy.max_rel_error)
        assert policy.accepts(10.0)

    def test_balanced_escalates_past_its_budget(self):
        policy = POLICIES["balanced"]
        assert policy.accepts(policy.max_rel_error)
        assert not policy.accepts(policy.max_rel_error * 1.01)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            TierPolicy("broken", use_analytic=True, max_rel_error=-0.1)

    def test_with_budget_tightens_the_ceiling(self):
        tight = POLICIES["fast"].with_budget(0.05)
        assert tight.accepts(0.05)
        assert not tight.accepts(0.06)
