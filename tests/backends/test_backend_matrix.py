"""Backend matrix: the engine suites and golden tables under each backend.

These tests pin the *selection* machinery (``repro.simmachine._backend``)
and prove the compiled engine is a drop-in replacement end to end:

* ``REPRO_ENGINE=pure`` / ``compiled`` force each backend and the
  ``tests/simmachine`` + ``tests/simmpi`` suites pass under both;
* the golden BT/SP/LU tables — pinned CSVs generated on the pure
  backend — are reproduced *bit-identically* by the compiled backend;
* forcing ``REPRO_ENGINE=compiled`` in an environment without the
  extension raises :class:`repro.errors.ConfigurationError`.

When the extension is not built, compiled-backend cases skip with an
explicit marker (never silently).
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

HAVE_CENGINE = (
    importlib.util.find_spec("repro.simmachine._cengine") is not None
)

requires_cengine = pytest.mark.skipif(
    not HAVE_CENGINE,
    reason="compiled engine extension not built (pure-only environment); "
    "build with 'REPRO_BUILD_EXT=1 python setup.py build_ext --inplace'",
)

#: -c prologue that makes `import repro.simmachine._cengine` fail even
#: when the extension is built, simulating a pure-only environment.
BLOCK_CENGINE = """\
import sys
class _Block:
    def find_spec(self, name, path=None, target=None):
        if name == "repro.simmachine._cengine":
            raise ImportError("blocked for test")
        return None
sys.meta_path.insert(0, _Block())
"""


def _run(code=None, *, args=None, engine=None, block=False, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if engine is None:
        env.pop("REPRO_ENGINE", None)
    else:
        env["REPRO_ENGINE"] = engine
    if code is not None:
        if block:
            code = BLOCK_CENGINE + code
        cmd = [sys.executable, "-c", code]
    else:
        cmd = [sys.executable, *args]
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=REPO_ROOT,
    )


class TestSelection:
    def test_auto_without_extension_falls_back_to_pure(self):
        proc = _run(
            "from repro.simmachine import _backend\n"
            "print(_backend.BACKEND_NAME, _backend.SELECTED_BY)\n",
            block=True,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.split() == ["pure", "auto"]

    def test_env_pure_selects_pure(self):
        proc = _run(
            "from repro.simmachine import _backend\n"
            "print(_backend.BACKEND_NAME, _backend.SELECTED_BY)\n",
            engine="pure",
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.split() == ["pure", "env"]

    @requires_cengine
    def test_env_compiled_selects_compiled(self):
        proc = _run(
            "from repro.simmachine import _backend\n"
            "print(_backend.BACKEND_NAME, _backend.SELECTED_BY)\n"
            "import repro.simmachine as sm\n"
            "from repro.simmachine import _cengine\n"
            "assert sm.Simulator is _cengine.Simulator\n",
            engine="compiled",
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.split() == ["compiled", "env"]

    def test_forced_compiled_without_extension_raises(self):
        proc = _run(
            "try:\n"
            "    from repro.simmachine import _backend\n"
            "except Exception as exc:\n"
            "    print(type(exc).__name__)\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit('selection unexpectedly succeeded')\n",
            engine="compiled",
            block=True,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip() == "ConfigurationError"

    def test_invalid_value_raises(self):
        proc = _run(
            "try:\n"
            "    from repro.simmachine import _backend\n"
            "except Exception as exc:\n"
            "    print(type(exc).__name__)\n"
            "    raise SystemExit(0)\n"
            "raise SystemExit('selection unexpectedly succeeded')\n",
            engine="definitely-not-a-backend",
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip() == "ConfigurationError"


class TestSuitesUnderBothBackends:
    """The engine-facing suites pass with the backend pinned either way."""

    @pytest.mark.parametrize(
        "engine",
        [
            "pure",
            pytest.param("compiled", marks=requires_cengine),
        ],
    )
    def test_simmachine_and_simmpi_suites(self, engine):
        proc = _run(
            args=[
                "-m",
                "pytest",
                "tests/simmachine",
                "tests/simmpi",
                "-q",
                "--no-header",
                "-p",
                "no:cacheprovider",
            ],
            engine=engine,
        )
        assert proc.returncode == 0, (
            f"suites failed under REPRO_ENGINE={engine}:\n"
            + proc.stdout[-3000:]
            + proc.stderr[-2000:]
        )


class TestGoldenTablesAcrossBackends:
    """The pinned golden CSVs were generated on the pure backend; the
    compiled backend must reproduce them byte for byte."""

    @requires_cengine
    @pytest.mark.parametrize("engine", ["pure", "compiled"])
    def test_golden_tables_bit_identical(self, engine):
        proc = _run(
            args=[
                "-m",
                "pytest",
                "tests/experiments/test_golden_tables.py",
                "-q",
                "--no-header",
                "-p",
                "no:cacheprovider",
            ],
            engine=engine,
        )
        assert proc.returncode == 0, (
            f"golden tables drifted under REPRO_ENGINE={engine}:\n"
            + proc.stdout[-3000:]
            + proc.stderr[-2000:]
        )
