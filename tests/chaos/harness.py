"""Deterministic chaos harness for the prediction serving stack.

Drives the *real* service — L1 cache, single-flight batcher, worker pool,
persistent sqlite tier, wire protocol — from many client threads while a
seeded :class:`~repro.faults.FaultPlan` fires faults at every layer. The
cell *simulation* is replaced by :func:`synthetic_execute`, which mirrors
``execute_cell``'s fault checkpoints and database round-trip but builds
its measurements arithmetically, so a soak of thousands of requests runs
in seconds while still exercising every robustness path.

The harness's contract (asserted by ``tests/chaos/test_chaos.py``):

* **no deadlock** — every client thread finishes;
* **typed outcomes** — every request yields a well-formed JSON response
  (``ok: true`` with predictions, or ``ok: false`` with ``error_type``)
  or an accounted client disconnect;
* **no silent corruption** — injected sqlite-tier corruption is detected
  and purged, never served (the tamper marker can never reach a client);
* **metrics reconcile** — obs counters match the injector's per-site fire
  counts, and those fire counts match the pure
  :meth:`~repro.faults.FaultPlan.schedule` replay (determinism).
"""

from __future__ import annotations

import json
import threading
import time
import random
from dataclasses import dataclass, field

from repro import faults, obs
from repro.core.kernel import ControlFlow
from repro.core.predictor import PredictionInputs
from repro.errors import ClientDisconnectError, WorkerCrashError
from repro.instrument.runner import Measurement
from repro.npb import make_benchmark
from repro.service import PredictionService, handle_line
from repro.service.workers import CellOutcome

#: Sentinel planted by the ``db.*.corrupt`` tamper; if it ever shows up in
#: a served value, corrupted data escaped detection.
TAMPER_MARKER = 666333.0

#: Pseudo-chain under which synthetic cells archive their "actual" time.
CHAOS_KEY = ("__CHAOS_ACTUAL__",)


def _stable_time(*parts) -> float:
    """A deterministic pseudo-measurement in (0, 1] ms-scale seconds."""
    import zlib

    digest = zlib.crc32("|".join(str(p) for p in parts).encode("utf-8"))
    return 1e-4 + (digest % 9999) * 1e-6


def synthetic_execute(task, database=None) -> CellOutcome:
    """A fast, deterministic stand-in for ``execute_cell``.

    Honours the same fault checkpoints (``worker.cell.stall``,
    ``worker.cell.crash``) and performs a real persistent-tier round-trip
    (``store_if_absent`` + ``get``) so the ``db.*.corrupt`` sites are
    exercised — the served ``actual`` comes *from the database*, making
    undetected corruption observable at the client.
    """
    stall = faults.check("worker.cell.stall")
    if stall is not None:
        time.sleep(stall.param)
    if faults.check("worker.cell.crash") is not None:
        raise WorkerCrashError("injected worker crash (worker.cell.crash)")

    (problem_class, nprocs) = task.plan.configurations()[0]
    benchmark = task.plan.benchmark
    bench = make_benchmark(benchmark, problem_class, nprocs)
    flow = ControlFlow(bench.loop_kernel_names)
    loop_times = {
        k: _stable_time(benchmark, problem_class, nprocs, k)
        for k in flow.names
    }
    chain_times = {}
    for length in task.plan.chain_lengths:
        for window in flow.windows(length):
            base = sum(loop_times[k] for k in window)
            wiggle = 0.9 + 0.2 * (_stable_time(*window) * 1e3 % 1.0)
            chain_times[window] = base * wiggle
    inputs = PredictionInputs(
        flow=flow,
        iterations=bench.iterations,
        loop_times=loop_times,
        chain_times=chain_times,
    )
    actual = sum(loop_times.values()) * bench.iterations

    if database is not None:
        # Round-trip the actual through the sqlite tier so db.write.corrupt
        # / db.read.corrupt stand between us and the served value.
        stored = database.store_if_absent(
            Measurement(
                benchmark=benchmark,
                problem_class=problem_class,
                nprocs=nprocs,
                kernels=CHAOS_KEY,
                samples=(actual,),
                overhead=0.0,
            )
        )
        actual = stored.mean

    return CellOutcome(
        benchmark=benchmark,
        problem_class=problem_class,
        nprocs=nprocs,
        inputs=inputs,
        actual=actual,
        simulations=1,
        reused=0,
    )


@dataclass
class ChaosResult:
    """Everything one harness run observed, ready for reconciliation."""

    requests: int = 0
    ok: int = 0
    degraded_ok: int = 0
    disconnects: int = 0
    errors_by_type: dict = field(default_factory=dict)
    malformed: list = field(default_factory=list)
    served_actuals: list = field(default_factory=list)
    fires: dict = field(default_factory=dict)
    hits: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def total_errors(self) -> int:
        return sum(self.errors_by_type.values())

    @property
    def accounted(self) -> int:
        return self.ok + self.disconnects + self.total_errors


def _classify(result: ChaosResult, response: str, lock: threading.Lock) -> None:
    """Validate one wire response and fold it into the result."""
    try:
        payload = json.loads(response)
    except json.JSONDecodeError:
        with lock:
            result.malformed.append(response)
        return
    with lock:
        if not isinstance(payload, dict) or "ok" not in payload:
            result.malformed.append(response)
        elif payload["ok"]:
            if "predictions" not in payload or "actual" not in payload:
                result.malformed.append(response)
                return
            result.ok += 1
            if payload.get("degraded"):
                result.degraded_ok += 1
            result.served_actuals.append(payload["actual"])
        else:
            if "error" not in payload or "error_type" not in payload:
                result.malformed.append(response)
                return
            kind = payload["error_type"]
            result.errors_by_type[kind] = result.errors_by_type.get(kind, 0) + 1


def request_stream(seed: int, n_requests: int, nprocs_choices=(1, 4, 9, 16)):
    """The deterministic request sequence one harness run serves."""
    rng = random.Random(seed)
    lines = []
    for i in range(n_requests):
        lines.append(
            json.dumps(
                {
                    "id": f"chaos-{i}",
                    "benchmark": "BT",
                    "problem_class": "S",
                    "nprocs": rng.choice(nprocs_choices),
                    "chain_length": rng.choice((2, 3)),
                    "seed": rng.choice((0, 1)),
                }
            )
        )
    return lines


def run_chaos(
    plan: faults.FaultPlan,
    n_requests: int,
    n_threads: int = 8,
    request_seed: int = 1234,
    join_timeout: float = 90.0,
    **service_kwargs,
) -> ChaosResult:
    """One full chaos run: seeded faults, threaded clients, reconciliation.

    Returns a :class:`ChaosResult`; raises AssertionError only for a
    deadlocked client thread (everything else is data for the caller).
    """
    defaults = dict(
        executor="thread",
        max_workers=4,
        queue_depth=32,
        batch_window=0.002,
        max_batch=8,
        default_timeout=2.0,
        crash_threshold=3,
        degraded_probe_every=4,
        execute=synthetic_execute,
    )
    defaults.update(service_kwargs)
    lines = request_stream(request_seed, n_requests)
    result = ChaosResult(requests=n_requests)
    lock = threading.Lock()
    cursor = {"next": 0}

    service = PredictionService(**defaults)
    injector = faults.install(plan)
    try:
        def client():
            while True:
                with lock:
                    i = cursor["next"]
                    if i >= len(lines):
                        return
                    cursor["next"] = i + 1
                try:
                    response = handle_line(service, lines[i])
                except ClientDisconnectError:
                    with lock:
                        result.disconnects += 1
                    continue
                if response is None:
                    with lock:
                        result.malformed.append("<no response>")
                    continue
                _classify(result, response, lock)

        threads = [
            threading.Thread(target=client, name=f"chaos-client-{t}")
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + join_timeout
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        stuck = [t.name for t in threads if t.is_alive()]
        assert not stuck, f"deadlocked client threads: {stuck}"
        result.stats = service.stats()
    finally:
        # Drain everything (including stalled cells whose waiters timed
        # out) *before* snapshotting fire counts, so the accounting is
        # complete, then deactivate the plan.
        service.close()
        result.fires = injector.fires()
        result.hits = injector.hits()
        faults.clear()

    registry = obs.get_registry()
    result.counters = {
        "request_timeout": registry.counter("request_timeout").value,
        "retry_attempts": registry.counter("retry_attempts").value,
        "worker_respawns": registry.counter("worker_respawns").value,
        "cache_corruption_detected": registry.counter(
            "cache_corruption_detected"
        ).value,
        "fault_injected": {
            site: registry.counter("fault_injected", site=site).value
            for site in plan.sites
        },
    }
    return result
