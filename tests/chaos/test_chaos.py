"""Chaos tests: the serving stack under seeded multi-site fault plans.

``test_smoke`` runs in tier 1 (a few hundred requests, deterministic
triggers so every site demonstrably fires). ``test_soak`` is the
``slow``-marked headline soak: thousands of requests, probabilistic
triggers, stalls long enough to force deadline expiries. Both share the
same invariants, checked by :func:`reconcile`.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec

from .harness import TAMPER_MARKER, run_chaos

pytestmark = pytest.mark.chaos


def plan(*specs, seed=0):
    return FaultPlan(specs=tuple(specs), seed=seed)


#: Deterministic cadences: guaranteed fires at every layer within a few
#: hundred requests.
SMOKE_PLAN = plan(
    FaultSpec(site="worker.cell.crash", every_nth=5),
    FaultSpec(site="worker.cell.stall", every_nth=11, param=0.02),
    FaultSpec(site="pool.submit.reject", every_nth=9),
    FaultSpec(site="batch.dispatch.error", every_nth=13),
    FaultSpec(site="cache.l1.drop", every_nth=6),
    FaultSpec(site="db.read.corrupt", every_nth=4),
    FaultSpec(site="db.write.corrupt", every_nth=7),
    FaultSpec(site="api.disconnect", every_nth=10),
    seed=42,
)

#: Probabilistic soak: the injector's seeded streams decide, and stalls
#: are longer than the deadline so timeouts occur.
SOAK_PLAN = plan(
    FaultSpec(site="worker.cell.crash", probability=0.06),
    FaultSpec(site="worker.cell.stall", every_nth=40, param=0.6),
    FaultSpec(site="pool.submit.reject", probability=0.02),
    FaultSpec(site="batch.dispatch.error", probability=0.02),
    FaultSpec(site="engine.dispatch.error", probability=0.02),
    FaultSpec(site="cache.l1.drop", probability=0.15),
    FaultSpec(site="db.read.corrupt", probability=0.08),
    FaultSpec(site="db.write.corrupt", probability=0.08),
    FaultSpec(site="api.disconnect", probability=0.04),
    seed=2002,
)

#: Error types a chaos run is allowed to surface — all ReproError
#: subclasses with a wire representation. Anything else is a bug.
EXPECTED_ERROR_TYPES = {
    "WorkerCrashError",
    "InjectedFaultError",
    "ServiceSaturatedError",
    "ServiceDegradedError",
    "ServiceTimeoutError",
    "MeasurementError",  # persistent write corruption after retry
    "ServiceError",
    "ServiceClosedError",
}


def reconcile(result, chaos_plan):
    """The harness contract: every invariant the ISSUE pins."""
    # 1. Zero deadlocks is asserted inside run_chaos (thread joins).
    # 2. Every request accounted: success, typed error, or disconnect.
    assert result.malformed == []
    assert result.accounted == result.requests
    unexpected = set(result.errors_by_type) - EXPECTED_ERROR_TYPES
    assert not unexpected, f"untyped/unexpected errors: {unexpected}"

    # 3. Corruption is detected, never served.
    assert all(abs(a) < TAMPER_MARKER for a in result.served_actuals)
    assert (
        result.counters["cache_corruption_detected"]
        >= result.fires.get("db.read.corrupt", 0)
    )

    # 4. Metrics reconcile with the injected fault counts.
    for site, fired in result.fires.items():
        assert result.counters["fault_injected"][site] == fired
    assert (
        result.counters["worker_respawns"]
        == result.fires.get("worker.cell.crash", 0)
    )
    assert (
        result.counters["request_timeout"]
        == result.errors_by_type.get("ServiceTimeoutError", 0)
    )
    assert result.disconnects == result.fires.get("api.disconnect", 0)

    # 5. Determinism: the observed fire counts match a pure replay of the
    #    plan's schedule over the observed per-site hit counts.
    for site, hit_count in result.hits.items():
        replay = chaos_plan.schedule(site, hit_count)
        assert sum(replay) == result.fires[site], (
            f"site {site}: {result.fires[site]} fires but the schedule "
            f"replay predicts {sum(replay)} over {hit_count} hits"
        )


@pytest.mark.timeout(100)
def test_smoke():
    """Tier-1 chaos: a few hundred requests, every site provably firing."""
    result = run_chaos(SMOKE_PLAN, n_requests=300, n_threads=8)
    reconcile(result, SMOKE_PLAN)
    active_sites = [s for s, n in result.fires.items() if n > 0]
    assert len(active_sites) >= 5, f"only fired: {active_sites}"
    assert result.ok > 0  # the service still served real answers


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_soak():
    """The headline soak: >= 2000 requests under nine active fault sites."""
    result = run_chaos(
        SOAK_PLAN,
        n_requests=2500,
        n_threads=12,
        request_seed=77,
        join_timeout=240.0,
        default_timeout=0.25,
    )
    reconcile(result, SOAK_PLAN)
    active_sites = [s for s, n in result.fires.items() if n > 0]
    assert len(active_sites) >= 5, f"only fired: {active_sites}"
    # The long stalls must actually have produced deadline expiries, and
    # the service must still have served plenty of real answers.
    assert result.errors_by_type.get("ServiceTimeoutError", 0) >= 1
    assert result.ok > result.requests // 2


@pytest.mark.timeout(100)
def test_same_seed_same_schedule_across_runs():
    """Same plan + seed => the injector makes identical decisions."""
    from repro import obs

    a = run_chaos(SMOKE_PLAN, n_requests=120, n_threads=4)
    obs.reset()  # counters are per-run; the registry is process-global
    b = run_chaos(SMOKE_PLAN, n_requests=120, n_threads=4)
    reconcile(a, SMOKE_PLAN)
    reconcile(b, SMOKE_PLAN)
    # Thread timing may shift *which* request hits a site, but the
    # decision sequence per site is a pure function of (seed, site, hit
    # index): replaying either run's hit counts gives its exact fires.
    for site in SMOKE_PLAN.sites:
        hits = min(a.hits[site], b.hits[site])
        assert SMOKE_PLAN.schedule(site, hits) == SMOKE_PLAN.schedule(site, hits)
        prefix_a = SMOKE_PLAN.schedule(site, a.hits[site])[:hits]
        prefix_b = SMOKE_PLAN.schedule(site, b.hits[site])[:hits]
        assert prefix_a == prefix_b


@pytest.mark.timeout(100)
def test_slo_counters_move_under_faults():
    """Injected faults burn the error budget and the SLO monitor sees it.

    A tight availability objective (99 %) against a plan that errors every
    third dispatch: the window's bad fraction is ~an order of magnitude
    over budget, so ``slo_report`` must flag the breach and mirror it into
    the registry counters the chaos dashboards read.
    """
    from repro import faults
    from repro.service import PredictionService, handle_line
    from repro.service.slo import SLOObjective

    from .harness import request_stream, synthetic_execute

    chaos_plan = plan(
        FaultSpec(site="batch.dispatch.error", every_nth=3),
        seed=7,
    )
    service = PredictionService(
        executor="thread",
        max_workers=2,
        batch_window=0.0,
        execute=synthetic_execute,
        slo_objectives=(
            SLOObjective(name="availability", kind="error_rate", target=0.99),
        ),
    )
    faults.install(chaos_plan)
    try:
        assert service.slo_report()["breaches"] == 0  # calm before
        for line in request_stream(seed=5, n_requests=60):
            handle_line(service, line)
        report = service.slo_report()
    finally:
        service.close()
        faults.clear()

    verdict = report["objectives"][0]
    assert report["window"]["requests"] >= 60
    assert verdict["bad"] > 0
    assert verdict["burn_rate"] > 1.0
    assert not verdict["met"]
    assert report["breaches"] == 1

    snapshot = service.metrics.registry.snapshot()
    assert snapshot["slo_breaches{objective=availability}"] >= 1
    assert snapshot["slo_burn_rate{objective=availability}"] > 1.0
