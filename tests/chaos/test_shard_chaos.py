"""Chaos battery for the sharded serving tier: murder a shard mid-soak.

Extends the single-process chaos harness across the process boundary:
real shard *processes* (forkserver/spawn), the real asyncio frontend,
and real TCP clients — then a SIGKILL (and, separately, the
``shard.process.exit`` fault site) takes a shard down while requests
are in flight. The contract:

* every request is answered exactly once — ``ok`` after retries, never
  silently dropped, never duplicated;
* in-flight requests on the victim fail with *typed* errors that client
  retry policies absorb;
* the ring reroutes immediately and the manager respawn restores the
  fleet to full strength;
* the outage is observable: ``shard_deaths`` / ``shard_respawns``
  counters and the frontend availability SLO (burn + breach) all move.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time

from repro import faults, obs
from repro.faults import FaultPlan, FaultSpec
from repro.instrument import MeasurementConfig
from repro.service import (
    LineClient,
    ProcessShardManager,
    RetryPolicy,
    ShardedServer,
    make_shard_configs,
)
from repro.service.shard import FAULT_EXIT_CODE, HashRing, route_key

from .harness import TAMPER_MARKER, request_stream

SHARDS = 3
SYNTH = "tests.chaos.harness:synthetic_execute"


def _configs(**overrides):
    defaults = dict(
        measurement=MeasurementConfig(repetitions=2, warmup=1, seed=0),
        max_workers=2,
        batch_window=0.001,
        queue_depth=16,
        execute_ref=SYNTH,
    )
    defaults.update(overrides)
    return list(make_shard_configs(SHARDS, **defaults))


def _soak(host, port, lines, n_threads=6, max_attempts=20):
    """Drive the request lines from threaded retrying clients.

    Returns ``{request id: response dict}`` — the exactly-once ledger.
    """
    responses: dict[str, dict] = {}
    duplicates: list[str] = []
    lock = threading.Lock()
    cursor = {"next": 0}

    def client():
        with LineClient(
            host,
            port,
            retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.05),
        ) as c:
            while True:
                with lock:
                    i = cursor["next"]
                    if i >= len(lines):
                        return
                    cursor["next"] = i + 1
                payload = json.loads(lines[i])
                response = c.predict(payload)
                with lock:
                    if payload["id"] in responses:
                        duplicates.append(payload["id"])
                    responses[payload["id"]] = response

    threads = [
        threading.Thread(target=client, name=f"shard-chaos-{t}", daemon=True)
        for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    deadline = time.monotonic() + 180.0
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    stuck = [t.name for t in threads if t.is_alive()]
    assert not stuck, f"deadlocked soak clients: {stuck}"
    assert not duplicates, f"duplicated responses: {duplicates}"
    return responses


def _await_recovery(client, expect_live=SHARDS, timeout=60.0):
    deadline = time.monotonic() + timeout
    front = {}
    while time.monotonic() < deadline:
        front = client.stats()["stats"]["frontend"]
        if (
            front["live_shards"] == expect_live
            and front["shard_respawns"] >= 1
        ):
            return front
        time.sleep(0.2)
    raise AssertionError(f"fleet never recovered: {front}")


def _assert_clean(responses, lines):
    assert sorted(responses) == sorted(
        json.loads(line)["id"] for line in lines
    )
    for request_id, response in responses.items():
        assert response["ok"], (request_id, response)
        assert response["actual"] != TAMPER_MARKER
        assert "predictions" in response and "best" in response


def test_sigkill_mid_soak_reroutes_and_respawns():
    """The headline chaos run: SIGKILL a shard holding an in-flight cell."""
    # The victim is chosen by the ring itself: whichever shard owns this
    # stall cell is guaranteed to have work in flight when it dies.
    stall_request = {
        "benchmark": "BT",
        "problem_class": "S",
        "nprocs": 16,
        "chain_length": 3,
        "seed": 5,
        "id": "stalled",
    }
    victim = HashRing(range(SHARDS)).shard_for(route_key(stall_request))
    configs = _configs()
    configs[victim] = dataclasses.replace(
        configs[victim],
        fault_plan=FaultPlan(
            specs=(
                FaultSpec(
                    site="worker.cell.stall",
                    every_nth=1,
                    max_fires=1,
                    param=5.0,
                ),
            ),
            seed=1,
        ),
    )
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(manager, admission_limit=64)
        host, port = server.start()
        monitor = LineClient(host, port)
        try:
            stalled_result = {}

            def stalled_client():
                with LineClient(
                    host,
                    port,
                    retry=RetryPolicy(max_attempts=10, base_delay=0.05),
                ) as c:
                    stalled_result["response"] = c.predict(stall_request)

            stalled = threading.Thread(target=stalled_client, daemon=True)
            stalled.start()
            time.sleep(1.0)  # the stall fault holds the cell in flight
            victim_pid = manager.pid(victim)
            manager.kill(victim)
            assert not manager.alive(victim)

            lines = request_stream(seed=4242, n_requests=48)
            responses = _soak(host, port, lines)
            stalled.join(timeout=60.0)
            assert not stalled.is_alive()

            # exactly-once, typed, uncorrupted — even through the outage
            _assert_clean(responses, lines)
            assert stalled_result["response"]["ok"]

            front = _await_recovery(monitor)
            assert front["shard_deaths"] >= 1
            assert front["shard_respawns"] >= 1
            assert front["failed"] >= 1  # the stalled in-flight cell
            assert manager.alive(victim)
            assert manager.pid(victim) != victim_pid

            # the respawned shard serves its old keys again
            after = monitor.predict(dict(stall_request, id="post-respawn"))
            assert after["ok"]
            assert after["actual"] == stalled_result["response"]["actual"]

            # the outage moved the SLO needles
            slo = monitor.request({"cmd": "slo"})["slo"]["frontend"]
            assert slo["bad"] >= 1
            assert slo["burn_rate"] > 0.0
            registry = obs.get_registry()
            assert (
                registry.counter(
                    "shard_deaths", shard=str(victim)
                ).value
                >= 1
            )
            assert (
                registry.counter(
                    "shard_respawns", shard=str(victim)
                ).value
                >= 1
            )
            if not slo["met"]:
                assert (
                    registry.counter(
                        "slo_breaches",
                        objective="frontend.availability",
                    ).value
                    >= 1
                )
        finally:
            monitor.close()
            server.stop()


def test_shard_exit_fault_site_fires_and_fleet_survives():
    """``shard.process.exit`` hard-exits shards mid-line; service holds."""
    plan = FaultPlan(
        specs=(
            FaultSpec(site="shard.process.exit", every_nth=19, max_fires=1),
        ),
        seed=7,
    )
    assert "shard.process.exit" in faults.SITES
    configs = _configs(fault_plan=plan)
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(manager, admission_limit=64)
        host, port = server.start()
        monitor = LineClient(host, port)
        try:
            pids_before = {s: manager.pid(s) for s in manager.shard_ids}
            lines = request_stream(seed=97, n_requests=60)
            responses = _soak(host, port, lines)
            _assert_clean(responses, lines)

            front = _await_recovery(monitor)
            assert front["shard_deaths"] >= 1
            assert front["live_shards"] == SHARDS
            # at least one shard was replaced by the injected hard exit
            replaced = [
                s
                for s in manager.shard_ids
                if manager.pid(s) != pids_before[s]
            ]
            assert replaced
            # and it really died through the fault site's exit path
            assert FAULT_EXIT_CODE == 17
        finally:
            monitor.close()
            server.stop()


def test_sigkill_composes_with_data_layer_faults(tmp_path):
    """A shard dies while db corruption faults fire fleet-wide; the
    tamper marker still never reaches a client."""
    plan = FaultPlan(
        specs=(
            FaultSpec(site="db.write.corrupt", every_nth=5),
            FaultSpec(site="db.read.corrupt", every_nth=7),
            FaultSpec(site="cache.l1.drop", every_nth=3),
        ),
        seed=11,
    )
    configs = _configs(
        fault_plan=plan, db_path=str(tmp_path / "chaos.sqlite")
    )
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(manager, admission_limit=64)
        host, port = server.start()
        monitor = LineClient(host, port)
        try:
            lines = request_stream(seed=31, n_requests=40)
            killer_done = threading.Event()

            def killer():
                time.sleep(0.5)
                manager.kill(manager.shard_ids[0])
                killer_done.set()

            threading.Thread(target=killer, daemon=True).start()
            responses = _soak(host, port, lines)
            assert killer_done.wait(timeout=30.0)
            _assert_clean(responses, lines)
            front = _await_recovery(monitor)
            assert front["shard_deaths"] >= 1
        finally:
            monitor.close()
            server.stop()
