"""Shared fixtures: small, fast configurations for the simulated machine."""

from __future__ import annotations

import pytest

from repro.instrument import MeasurementConfig
from repro.simmachine import Machine, ibm_sp_argonne, linear_test_machine
from repro.simmpi import attach_world


@pytest.fixture(autouse=True)
def fresh_observability():
    """Isolate every test behind a fresh global registry and tracer."""
    from repro import obs

    obs.reset()
    yield
    obs.reset()


@pytest.fixture
def sp_config():
    """The paper's IBM-SP-like machine configuration."""
    return ibm_sp_argonne()

@pytest.fixture
def linear_config():
    """Interaction-free machine (couplings must be exactly 1)."""
    return linear_test_machine()


@pytest.fixture
def quiet_config():
    """IBM-SP machine with all noise disabled (deterministic timings)."""
    return ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)


@pytest.fixture
def fast_measurement():
    """Few repetitions — keeps harness-based tests quick."""
    return MeasurementConfig(repetitions=3, warmup=1, seed=0)


def make_machine(config, nprocs, seed=0, run_id="test"):
    """Machine + attached MPI world, ready to run programs."""
    machine = Machine(config, nprocs, seed=seed, run_id=run_id)
    attach_world(machine)
    return machine


@pytest.fixture
def machine4(quiet_config):
    """Four-rank deterministic machine with MPI attached."""
    return make_machine(quiet_config, 4)
