"""Shared fixtures: small, fast configurations for the simulated machine."""

from __future__ import annotations

import signal
import threading

import pytest

from repro.instrument import MeasurementConfig
from repro.simmachine import Machine, ibm_sp_argonne, linear_test_machine
from repro.simmpi import attach_world

#: Wall-clock ceiling per test; a hung chaos/service test fails loudly
#: instead of wedging the whole run. Override per-test with
#: ``@pytest.mark.timeout(seconds)``.
DEFAULT_TEST_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def fresh_observability():
    """Isolate every test behind a fresh global registry and tracer."""
    from repro import obs

    obs.reset()
    yield
    obs.reset()


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """No fault plan may leak into (or out of) any test."""
    from repro import faults

    faults.clear()
    yield
    faults.clear()


@pytest.fixture(autouse=True)
def per_test_timeout(request):
    """In-repo per-test deadline (pytest-timeout is not vendored).

    Uses ``SIGALRM``, so it only arms on POSIX main-thread runs —
    elsewhere it degrades to a no-op rather than breaking collection.
    """
    marker = request.node.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        pytest.fail(
            f"test exceeded its {seconds:g}s wall-clock deadline "
            "(possible deadlock)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def sp_config():
    """The paper's IBM-SP-like machine configuration."""
    return ibm_sp_argonne()

@pytest.fixture
def linear_config():
    """Interaction-free machine (couplings must be exactly 1)."""
    return linear_test_machine()


@pytest.fixture
def quiet_config():
    """IBM-SP machine with all noise disabled (deterministic timings)."""
    return ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)


@pytest.fixture
def fast_measurement():
    """Few repetitions — keeps harness-based tests quick."""
    return MeasurementConfig(repetitions=3, warmup=1, seed=0)


def make_machine(config, nprocs, seed=0, run_id="test"):
    """Machine + attached MPI world, ready to run programs."""
    machine = Machine(config, nprocs, seed=seed, run_id=run_id)
    attach_world(machine)
    return machine


@pytest.fixture
def machine4(quiet_config):
    """Four-rank deterministic machine with MPI attached."""
    return make_machine(quiet_config, 4)
