"""The composition algebra vs the paper's explicit §3 formulas."""

import pytest

from repro.core.coefficients import kernel_coefficients
from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow


@pytest.fixture
def flow():
    return ControlFlow(["A", "B", "C", "D"])


def build(flow, length, chains, isolated):
    return CouplingSet.from_performances(flow, length, chains, isolated)


class TestPairwisePaperFormulas:
    """α = [(C_AB·P_AB) + (C_DA·P_DA)] / (P_AB + P_DA), etc. (§3)."""

    def test_alpha_formula_exact(self, flow):
        isolated = {"A": 10.0, "B": 12.0, "C": 14.0, "D": 16.0}
        chains = {
            ("A", "B"): 20.0,
            ("B", "C"): 27.0,
            ("C", "D"): 24.0,
            ("D", "A"): 28.6,
        }
        cs = build(flow, 2, chains, isolated)
        coeffs = kernel_coefficients(cs)
        c_ab = 20.0 / 22.0
        c_bc = 27.0 / 26.0
        c_cd = 24.0 / 30.0
        c_da = 28.6 / 26.0
        assert coeffs["A"] == pytest.approx(
            (c_ab * 20.0 + c_da * 28.6) / (20.0 + 28.6)
        )
        assert coeffs["B"] == pytest.approx(
            (c_ab * 20.0 + c_bc * 27.0) / (20.0 + 27.0)
        )
        assert coeffs["C"] == pytest.approx(
            (c_bc * 27.0 + c_cd * 24.0) / (27.0 + 24.0)
        )
        assert coeffs["D"] == pytest.approx(
            (c_cd * 24.0 + c_da * 28.6) / (24.0 + 28.6)
        )


class TestChainOfThreePaperFormulas:
    """α = [(C_ABC·P_ABC)+(C_CDA·P_CDA)+(C_DAB·P_DAB)] / (ΣP) (§3)."""

    def test_alpha_formula_exact(self, flow):
        isolated = {"A": 10.0, "B": 12.0, "C": 14.0, "D": 16.0}
        chains = {
            ("A", "B", "C"): 30.0,
            ("B", "C", "D"): 40.0,
            ("C", "D", "A"): 36.0,
            ("D", "A", "B"): 35.0,
        }
        cs = build(flow, 3, chains, isolated)
        coeffs = kernel_coefficients(cs)
        c_abc = 30.0 / 36.0
        c_bcd = 40.0 / 42.0
        c_cda = 36.0 / 40.0
        c_dab = 35.0 / 38.0
        assert coeffs["A"] == pytest.approx(
            (c_abc * 30.0 + c_cda * 36.0 + c_dab * 35.0) / (30.0 + 36.0 + 35.0)
        )
        assert coeffs["B"] == pytest.approx(
            (c_abc * 30.0 + c_bcd * 40.0 + c_dab * 35.0) / (30.0 + 40.0 + 35.0)
        )
        assert coeffs["C"] == pytest.approx(
            (c_abc * 30.0 + c_bcd * 40.0 + c_cda * 36.0) / (30.0 + 40.0 + 36.0)
        )
        assert coeffs["D"] == pytest.approx(
            (c_bcd * 40.0 + c_cda * 36.0 + c_dab * 35.0) / (40.0 + 36.0 + 35.0)
        )


class TestCoefficientProperties:
    def test_no_interaction_gives_unit_coefficients(self, flow):
        isolated = {"A": 1.0, "B": 2.0, "C": 3.0, "D": 4.0}
        chains = {w: sum(isolated[k] for k in w) for w in flow.windows(2)}
        coeffs = kernel_coefficients(build(flow, 2, chains, isolated))
        assert all(c == pytest.approx(1.0) for c in coeffs.values())

    def test_uniform_coupling_passes_through(self, flow):
        isolated = {"A": 1.0, "B": 2.0, "C": 3.0, "D": 4.0}
        chains = {
            w: 0.75 * sum(isolated[k] for k in w) for w in flow.windows(3)
        }
        coeffs = kernel_coefficients(build(flow, 3, chains, isolated))
        assert all(c == pytest.approx(0.75) for c in coeffs.values())

    def test_every_kernel_gets_a_coefficient(self, flow):
        isolated = {k: 1.0 for k in "ABCD"}
        chains = {w: 2.0 for w in flow.windows(2)}
        coeffs = kernel_coefficients(build(flow, 2, chains, isolated))
        assert set(coeffs) == {"A", "B", "C", "D"}

    def test_heavier_chain_dominates_weighting(self, flow):
        """A window with big P_w pulls the coefficient toward its C_w."""
        isolated = {k: 10.0 for k in "ABCD"}
        chains = {
            ("A", "B"): 10.0,   # C = 0.5, light
            ("B", "C"): 20.0,
            ("C", "D"): 20.0,
            ("D", "A"): 40.0,   # C = 2.0, heavy
        }
        coeffs = kernel_coefficients(build(flow, 2, chains, isolated))
        # alpha = (0.5*10 + 2.0*40) / 50 = 1.7 — nearer the heavy window.
        assert coeffs["A"] == pytest.approx(1.7)
