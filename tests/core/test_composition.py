"""Composition models (Eq. 3 as an object)."""

import pytest

from repro.core.composition import CompositionModel
from repro.core.kernel import ControlFlow, Kernel
from repro.core.models import MeasuredModel
from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.errors import PredictionError


@pytest.fixture
def inputs():
    flow = ControlFlow(["A", "B", "C", "D"])
    loop = {"A": 1.0, "B": 2.0, "C": 3.0, "D": 4.0}
    chains = {w: 0.8 * sum(loop[k] for k in w) for w in flow.windows(2)}
    return PredictionInputs(
        flow=flow,
        iterations=50,
        loop_times=loop,
        pre_times={"INIT": 5.0},
        post_times={"FINAL": 2.0},
        chain_times=chains,
    )


class TestFit:
    def test_matches_predictor(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        assert model.evaluate() == pytest.approx(
            CouplingPredictor(2).predict(inputs)
        )

    def test_coefficients_recorded(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        assert all(
            c == pytest.approx(0.8) for c in model.coefficients.values()
        )

    def test_pre_post_included(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        assert model.pre_seconds == 5.0
        assert model.post_seconds == 2.0


class TestEquation:
    def test_symbolic_form_matches_paper(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        eq = model.equation()
        assert eq.startswith("T = T_pre + 50*(")
        assert "alpha*E_A" in eq
        assert "beta*E_B" in eq
        assert "delta*E_D" in eq
        assert eq.endswith("+ T_post")

    def test_numeric_form_substitutes_values(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        assert "0.800*E_A" in model.equation(numeric=True)

    def test_symbols_cycle_beyond_greek_list(self):
        flow = ControlFlow([f"K{i}" for i in range(10)])
        loop = {k: 1.0 for k in flow.names}
        chains = {w: 2.0 for w in flow.windows(2)}
        inputs = PredictionInputs(
            flow=flow, iterations=1, loop_times=loop, chain_times=chains
        )
        model = CompositionModel.fit(inputs, 2)
        assert model.symbol_for("K0") == "alpha"
        assert model.symbol_for("K8") == "alpha2"

    def test_unknown_kernel_symbol(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        with pytest.raises(PredictionError):
            model.symbol_for("Z")

    def test_coefficient_table(self, inputs):
        model = CompositionModel.fit(inputs, chain_length=2)
        rows = model.coefficient_table()
        assert [r[0] for r in rows] == ["A", "B", "C", "D"]
        assert rows[0][1] == "alpha"


class TestManualAssembly:
    def test_hand_built_model(self):
        flow = ControlFlow([Kernel("A", 2), "B"])
        model = CompositionModel(
            flow=flow,
            iterations=10,
            coefficients={"A": 0.9, "B": 1.1},
            models={"A": MeasuredModel("A", 1.0), "B": MeasuredModel("B", 2.0)},
        )
        # 10 * (0.9*1.0*2 + 1.1*2.0) = 10 * 4.0.
        assert model.evaluate() == pytest.approx(40.0)

    def test_missing_pieces_rejected(self):
        flow = ControlFlow(["A", "B"])
        with pytest.raises(PredictionError, match="missing"):
            CompositionModel(
                flow=flow,
                iterations=1,
                coefficients={"A": 1.0},
                models={"A": MeasuredModel("A", 1.0)},
            )
