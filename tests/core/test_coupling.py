"""Coupling values: Equations 1-2 and the three-way classification."""

import pytest

from repro.core.coupling import (
    CouplingClass,
    CouplingSet,
    classify,
    coupling_value,
)
from repro.core.kernel import ControlFlow
from repro.core.metrics import Metric
from repro.errors import ConfigurationError, PredictionError


class TestEquationOne:
    def test_pair_ratio(self):
        # C_ij = P_ij / (P_i + P_j)
        assert coupling_value(8.0, [5.0, 5.0]) == pytest.approx(0.8)

    def test_no_interaction_is_one(self):
        assert coupling_value(10.0, [4.0, 6.0]) == pytest.approx(1.0)

    def test_destructive_over_one(self):
        assert coupling_value(12.0, [5.0, 5.0]) == pytest.approx(1.2)


class TestEquationTwo:
    def test_chain_of_three(self):
        assert coupling_value(24.0, [10.0, 10.0, 10.0]) == pytest.approx(0.8)

    def test_single_kernel_chain_degenerates(self):
        assert coupling_value(5.0, [5.0]) == pytest.approx(1.0)

    def test_rate_metric_uses_weighted_average(self):
        # flop/s must combine by weighted average, not summation (§2).
        value = coupling_value(
            100.0, [80.0, 120.0], metric=Metric.FLOP_RATE, weights=[1.0, 1.0]
        )
        assert value == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            coupling_value(0.0, [1.0])
        with pytest.raises(ConfigurationError):
            coupling_value(1.0, [])


class TestClassification:
    def test_constructive(self):
        assert classify(0.8) is CouplingClass.CONSTRUCTIVE

    def test_destructive(self):
        assert classify(1.2) is CouplingClass.DESTRUCTIVE

    def test_neutral_within_tolerance(self):
        assert classify(1.01) is CouplingClass.NEUTRAL
        assert classify(0.99) is CouplingClass.NEUTRAL

    def test_custom_tolerance(self):
        assert classify(1.01, tolerance=0.0) is CouplingClass.DESTRUCTIVE

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            classify(0.0)
        with pytest.raises(ConfigurationError):
            classify(1.0, tolerance=-0.1)


@pytest.fixture
def flow():
    return ControlFlow(["A", "B", "C", "D"])


@pytest.fixture
def measurements():
    isolated = {"A": 10.0, "B": 20.0, "C": 30.0, "D": 40.0}
    chains = {
        ("A", "B"): 27.0,
        ("B", "C"): 45.0,
        ("C", "D"): 63.0,
        ("D", "A"): 55.0,
    }
    return isolated, chains


class TestCouplingSet:
    def test_builds_all_windows(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        assert len(cs) == 4
        assert cs[("A", "B")].value == pytest.approx(27.0 / 30.0)
        assert cs[("D", "A")].value == pytest.approx(55.0 / 50.0)

    def test_stores_chain_performance_for_weighting(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        assert cs[("B", "C")].chain_performance == 45.0
        assert cs[("B", "C")].isolated_sum == 50.0

    def test_chain_class_property(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        assert cs[("A", "B")].coupling_class is CouplingClass.CONSTRUCTIVE
        assert cs[("D", "A")].coupling_class is CouplingClass.DESTRUCTIVE

    def test_missing_chain_measurement_raises(self, flow, measurements):
        isolated, chains = measurements
        del chains[("C", "D")]
        with pytest.raises(PredictionError, match="missing chain"):
            CouplingSet.from_performances(flow, 2, chains, isolated)

    def test_missing_isolated_measurement_raises(self, flow, measurements):
        isolated, chains = measurements
        del isolated["B"]
        with pytest.raises(PredictionError, match="missing isolated"):
            CouplingSet.from_performances(flow, 2, chains, isolated)

    def test_containing(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        windows = {c.window for c in cs.containing("A")}
        assert windows == {("A", "B"), ("D", "A")}

    def test_chain_length_bounds(self, flow):
        with pytest.raises(ConfigurationError):
            CouplingSet(flow, 1)
        with pytest.raises(ConfigurationError):
            CouplingSet(flow, 5)

    def test_unknown_window_lookup(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        with pytest.raises(PredictionError):
            cs[("A", "C")]

    def test_values_mapping(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        vals = cs.values()
        assert set(vals) == set(flow.windows(2))
        assert all(v > 0 for v in vals.values())

    def test_iteration_yields_chain_couplings(self, flow, measurements):
        isolated, chains = measurements
        cs = CouplingSet.from_performances(flow, 2, chains, isolated)
        assert len(list(cs)) == 4
