"""Scaling-curve fitting and unmeasured-configuration prediction."""

import math

import pytest

from repro.core.fitting import KernelScalingModel, ScalingModelSet, npb_work_share
from repro.core.kernel import ControlFlow
from repro.core.predictor import CouplingPredictor
from repro.errors import PredictionError


class TestKernelScalingModel:
    def test_recovers_exact_ansatz(self):
        # t(P) = 0.5 + 8/P + 0.1*log2(P): exactly representable.
        def truth(p):
            return 0.5 + 8.0 / p + 0.1 * math.log2(max(2, p))

        samples = {p: truth(p) for p in (2, 4, 8, 16)}
        model = KernelScalingModel.fit("K", samples)
        assert model.residual < 1e-9
        assert model.evaluate(32) == pytest.approx(truth(32), rel=1e-9)

    def test_coefficients_non_negative(self):
        # Data shaped like pure 1/P scaling with noise cannot produce
        # negative serial/comm terms.
        samples = {p: 10.0 / p for p in (2, 4, 8)}
        model = KernelScalingModel.fit("K", samples)
        assert model.serial >= 0 and model.parallel >= 0 and model.comm >= 0

    def test_interpolation_reasonable(self):
        samples = {4: 2.5, 16: 1.0}
        model = KernelScalingModel.fit("K", samples)
        at9 = model.evaluate(9)
        assert 1.0 <= at9 <= 2.5

    def test_needs_two_points(self):
        with pytest.raises(PredictionError, match=">= 2"):
            KernelScalingModel.fit("K", {4: 1.0})

    def test_rejects_bad_samples(self):
        with pytest.raises(PredictionError):
            KernelScalingModel.fit("K", {4: 1.0, 0: 2.0})
        with pytest.raises(PredictionError):
            KernelScalingModel.fit("K", {4: 1.0, 8: -1.0})

    def test_evaluate_validates_nprocs(self):
        model = KernelScalingModel.fit("K", {2: 2.0, 4: 1.0})
        with pytest.raises(PredictionError):
            model.evaluate(0)


class TestScalingModelSetSynthetic:
    def make_set(self):
        flow = ControlFlow(["A", "B"])
        sset = ScalingModelSet(flow, chain_length=2)
        truth = {
            "A": lambda p: 1.0 + 16.0 / p,
            "B": lambda p: 0.5 + 8.0 / p,
        }
        sset.fit_loop_kernels(
            {k: {p: fn(p) for p in (2, 4, 8)} for k, fn in truth.items()}
        )
        return flow, sset, truth

    def test_missing_kernel_rejected(self):
        flow = ControlFlow(["A", "B"])
        sset = ScalingModelSet(flow, 2)
        with pytest.raises(PredictionError, match="missing training"):
            sset.fit_loop_kernels({"A": {2: 1.0, 4: 0.5}})

    def test_loop_times_extrapolate(self):
        _, sset, truth = self.make_set()
        times = sset.loop_times_at(16)
        for kernel, fn in truth.items():
            assert times[kernel] == pytest.approx(fn(16), rel=1e-6)

    def test_predict_with_uniform_couplings(self):
        from repro.core.coupling import CouplingSet

        flow, sset, truth = self.make_set()
        isolated = {k: fn(4) for k, fn in truth.items()}
        chains = {
            w: 0.9 * sum(isolated[k] for k in w) for w in flow.windows(2)
        }
        sset.add_couplings(
            "W", 4, CouplingSet.from_performances(flow, 2, chains, isolated)
        )
        predicted = sset.predict("W", 16, iterations=10)
        expected = 10 * 0.9 * sum(fn(16) for fn in truth.values())
        assert predicted == pytest.approx(expected, rel=1e-6)

    def test_residual_reporting(self):
        _, sset, _ = self.make_set()
        assert sset.worst_training_residual() < 1e-6

    def test_empty_set_rejected(self):
        sset = ScalingModelSet(ControlFlow(["A"]), 2)
        with pytest.raises(PredictionError):
            sset.loop_times_at(4)
        with pytest.raises(PredictionError):
            sset.worst_training_residual()


class TestEndToEndExtrapolation:
    def test_bt_w_25_procs_from_smaller_counts(self):
        """Train on 4/9/16 procs, predict 25 — never measured — within a
        few percent of the simulated actual."""
        from repro.experiments import ExperimentPipeline, ExperimentSettings
        from repro.instrument import MeasurementConfig

        pipeline = ExperimentPipeline(
            ExperimentSettings(
                measurement=MeasurementConfig(repetitions=4, warmup=2)
            )
        )
        train_procs = (4, 9, 16)
        results = {
            p: pipeline.config_result("BT", "W", p, (3,)) for p in train_procs
        }
        flow = results[4].flow
        sset = ScalingModelSet(
            flow, chain_length=3, work_share=npb_work_share("BT", "W")
        )
        sset.fit_loop_kernels(
            {
                k: {p: results[p].inputs.loop_times[k] for p in train_procs}
                for k in flow.names
            }
        )
        sset.fit_one_shots(
            {
                k: {
                    p: results[p].inputs.pre_times[k] for p in train_procs
                }
                for k in results[4].inputs.pre_times
            }
        )
        sset.fit_one_shots(
            {
                k: {
                    p: results[p].inputs.post_times[k] for p in train_procs
                }
                for k in results[4].inputs.post_times
            }
        )
        for p in train_procs:
            sset.add_couplings(
                "W", p, CouplingPredictor(3).coupling_set(results[p].inputs)
            )
        target = pipeline.config_result("BT", "W", 25)  # actual only
        predicted = sset.predict("W", 25, iterations=target.inputs.iterations)
        error = abs(predicted - target.actual) / target.actual
        assert error < 0.08, f"extrapolation error {100 * error:.2f} %"

    def test_work_share_basis_beats_even_share(self):
        """The NPB ceil-imbalance basis must extrapolate the busiest-rank
        kernels better than the idealized 1/P basis."""
        from repro.experiments import ExperimentPipeline, ExperimentSettings
        from repro.instrument import MeasurementConfig

        pipeline = ExperimentPipeline(
            ExperimentSettings(
                measurement=MeasurementConfig(repetitions=3, warmup=2)
            )
        )
        train = (4, 9, 16)
        results = {p: pipeline.config_result("BT", "W", p) for p in (*train, 25)}
        samples = {
            p: results[p].inputs.loop_times["X_SOLVE"] for p in train
        }
        actual = results[25].inputs.loop_times["X_SOLVE"]
        naive = KernelScalingModel.fit("X_SOLVE", samples)
        aware = KernelScalingModel.fit(
            "X_SOLVE", samples, npb_work_share("BT", "W")
        )
        err_naive = abs(naive.evaluate(25) - actual) / actual
        err_aware = abs(aware.evaluate(25) - actual) / actual
        assert err_aware < err_naive
