"""Kernels and control-flow windows."""

import pytest

from repro.core.kernel import ControlFlow, Kernel
from repro.errors import ConfigurationError


class TestKernel:
    def test_defaults(self):
        k = Kernel("X")
        assert k.calls_per_iteration == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Kernel("")

    def test_zero_calls_rejected(self):
        with pytest.raises(ConfigurationError):
            Kernel("X", calls_per_iteration=0)


class TestControlFlow:
    def test_names_preserved_in_order(self):
        flow = ControlFlow(["A", "B", "C"])
        assert flow.names == ("A", "B", "C")
        assert len(flow) == 3

    def test_accepts_kernel_objects(self):
        flow = ControlFlow([Kernel("A", 2), "B"])
        assert flow.kernels[0].calls_per_iteration == 2

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ControlFlow(["A", "B", "A"])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlFlow([])

    def test_contains(self):
        flow = ControlFlow(["A", "B"])
        assert "A" in flow
        assert "Z" not in flow


class TestWindows:
    def test_cyclic_pairs_match_paper_example(self):
        """§3: for kernels A,B,C,D the pairwise chains are AB, BC, CD, DA."""
        flow = ControlFlow(["A", "B", "C", "D"])
        assert flow.windows(2) == [
            ("A", "B"), ("B", "C"), ("C", "D"), ("D", "A"),
        ]

    def test_cyclic_triples_match_paper_example(self):
        """§3: length-3 chains of A,B,C,D are ABC, BCD, CDA, DAB."""
        flow = ControlFlow(["A", "B", "C", "D"])
        assert flow.windows(3) == [
            ("A", "B", "C"), ("B", "C", "D"), ("C", "D", "A"), ("D", "A", "B"),
        ]

    def test_cyclic_window_count_is_n(self):
        flow = ControlFlow(list("ABCDE"))
        for length in range(2, 6):
            assert len(flow.windows(length)) == 5

    def test_acyclic_windows(self):
        flow = ControlFlow(["A", "B", "C", "D"], cyclic=False)
        assert flow.windows(2) == [("A", "B"), ("B", "C"), ("C", "D")]
        assert flow.windows(4) == [("A", "B", "C", "D")]

    def test_length_bounds(self):
        flow = ControlFlow(["A", "B"])
        with pytest.raises(ConfigurationError):
            flow.windows(0)
        with pytest.raises(ConfigurationError):
            flow.windows(3)

    def test_windows_containing_matches_paper(self):
        """§3: kernel A (of ABCD) appears in C_ABC, C_CDA, C_DAB for L=3."""
        flow = ControlFlow(["A", "B", "C", "D"])
        wins = flow.windows_containing("A", 3)
        assert set(wins) == {("A", "B", "C"), ("C", "D", "A"), ("D", "A", "B")}

    def test_each_kernel_in_exactly_l_windows(self):
        flow = ControlFlow(list("ABCDE"))
        for length in range(2, 6):
            for kernel in flow.names:
                assert len(flow.windows_containing(kernel, length)) == length

    def test_windows_containing_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            ControlFlow(["A", "B"]).windows_containing("Z", 2)

    def test_pairwise_windows_containing_matches_paper_alpha(self):
        """§3: α for A uses C_AB and C_DA."""
        flow = ControlFlow(["A", "B", "C", "D"])
        wins = flow.windows_containing("A", 2)
        assert set(wins) == {("A", "B"), ("D", "A")}


class TestAdjacencies:
    def test_cyclic_wraps(self):
        flow = ControlFlow(["A", "B", "C"])
        assert flow.adjacencies() == [("A", "B"), ("B", "C"), ("C", "A")]

    def test_acyclic_does_not_wrap(self):
        flow = ControlFlow(["A", "B", "C"], cyclic=False)
        assert flow.adjacencies() == [("A", "B"), ("B", "C")]


class TestValidateWindow:
    def test_accepts_real_window(self):
        flow = ControlFlow(["A", "B", "C"])
        assert flow.validate_window(["C", "A"]) == ("C", "A")

    def test_rejects_non_window(self):
        flow = ControlFlow(["A", "B", "C"])
        with pytest.raises(ConfigurationError):
            flow.validate_window(["A", "C"])
