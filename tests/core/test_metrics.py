"""Metric combination rules (§2)."""

import pytest

from repro.core.metrics import Metric, combine_isolated
from repro.errors import ConfigurationError


class TestAdditiveMetrics:
    @pytest.mark.parametrize("metric", [Metric.TIME, Metric.CACHE_MISSES])
    def test_sum(self, metric):
        assert combine_isolated(metric, [1.0, 2.0, 3.0]) == pytest.approx(6.0)

    @pytest.mark.parametrize("metric", [Metric.TIME, Metric.CACHE_MISSES])
    def test_additive_flag(self, metric):
        assert metric.additive

    def test_weights_rejected_for_additive(self):
        with pytest.raises(ConfigurationError, match="summation"):
            combine_isolated(Metric.TIME, [1.0, 2.0], weights=[1.0, 1.0])


class TestRateMetrics:
    def test_flop_rate_not_additive(self):
        assert not Metric.FLOP_RATE.additive

    def test_weighted_average(self):
        # 100 Mflop/s for 3s and 200 Mflop/s for 1s -> 125 Mflop/s overall.
        combined = combine_isolated(
            Metric.FLOP_RATE, [100.0, 200.0], weights=[3.0, 1.0]
        )
        assert combined == pytest.approx(125.0)

    def test_default_weights_equal(self):
        assert combine_isolated(Metric.FLOP_RATE, [100.0, 200.0]) == pytest.approx(150.0)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            combine_isolated(Metric.TIME, [])
