"""Analytical kernel models vs measured simulator behaviour."""

import pytest

from repro.core.models import (
    AnalyticalNPBModel,
    MeasuredModel,
    analytical_loop_models,
)
from repro.errors import ConfigurationError
from repro.instrument import ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


class TestMeasuredModel:
    def test_evaluate_returns_per_call(self):
        assert MeasuredModel("K", 2.5).evaluate() == 2.5

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            MeasuredModel("K", 0.0)


class TestAnalyticalModel:
    def test_cost_components(self):
        machine = ibm_sp_argonne()
        model = AnalyticalNPBModel(
            kernel="K",
            flops=1e6,
            cold_bytes=1e6,
            messages=4,
            message_bytes=4000,
            machine=machine,
        )
        proc, net = machine.processor, machine.network
        expected = (
            1e6 * proc.flop_time
            + 1e6 * proc.memory_byte_time
            + 4 * (net.per_message_overhead + net.latency)
            + 4000 * net.byte_time
        )
        assert model.evaluate() == pytest.approx(expected)


class TestAnalyticalLoopModels:
    @pytest.mark.parametrize(
        "name,cls,procs", [("BT", "S", 4), ("SP", "W", 4), ("LU", "S", 4)]
    )
    def test_covers_all_loop_kernels(self, name, cls, procs):
        bench = make_benchmark(name, cls, procs)
        models = analytical_loop_models(bench, ibm_sp_argonne())
        assert set(models) == set(bench.loop_kernel_names)
        assert all(m.evaluate() > 0 for m in models.values())

    def test_tracks_measured_times_within_factor(self):
        """The manual models must land in the simulator's ballpark —
        within 2.5x for every BT loop kernel (they ignore warmth, jitter
        and pipelining, so exact agreement is not expected)."""
        machine = ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)
        bench = make_benchmark("BT", "W", 4)
        models = analytical_loop_models(bench, machine)
        runner = ChainRunner(
            bench, machine, MeasurementConfig(repetitions=2, warmup=1)
        )
        for kernel, model in models.items():
            measured = runner.measure((kernel,)).mean
            ratio = model.evaluate() / measured
            assert 0.4 < ratio < 2.5, (kernel, ratio)

    def test_solve_models_scale_with_grid(self):
        machine = ibm_sp_argonne()
        small = analytical_loop_models(make_benchmark("BT", "S", 4), machine)
        large = analytical_loop_models(make_benchmark("BT", "A", 4), machine)
        assert large["X_SOLVE"].evaluate() > 50 * small["X_SOLVE"].evaluate()

    def test_z_solve_has_no_messages(self):
        bench = make_benchmark("BT", "W", 4)
        models = analytical_loop_models(bench, ibm_sp_argonne())
        assert models["Z_SOLVE"].messages == 0
        assert models["X_SOLVE"].messages > 0

    def test_lu_sweeps_are_message_heavy(self):
        bench = make_benchmark("LU", "W", 4)
        models = analytical_loop_models(bench, ibm_sp_argonne())
        nz = bench.layout.local_dims(0)[2]
        assert models["SSOR_LT"].messages >= nz
