"""Summation and coupling predictors."""

import pytest

from repro.core.kernel import ControlFlow, Kernel
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    PredictionReport,
    SummationPredictor,
    best_chain_length,
)
from repro.errors import PredictionError


@pytest.fixture
def flow():
    return ControlFlow(["CF", "XS", "YS", "ZS", "ADD"])


@pytest.fixture
def inputs(flow):
    loop = {"CF": 2.0, "XS": 3.0, "YS": 3.0, "ZS": 3.0, "ADD": 0.5}
    chains = {w: 0.9 * sum(loop[k] for k in w) for w in flow.windows(2)}
    chains.update(
        {w: 0.85 * sum(loop[k] for k in w) for w in flow.windows(3)}
    )
    return PredictionInputs(
        flow=flow,
        iterations=60,
        loop_times=loop,
        pre_times={"INIT": 5.0},
        post_times={"FINAL": 1.0},
        chain_times=chains,
    )


class TestSummation:
    def test_matches_paper_formula(self, inputs):
        """Summation = Tinit + 60*(Tcf+Txs+Tys+Tzs+Tadd) + Tfinal (§4.1)."""
        expected = 5.0 + 60 * (2.0 + 3.0 + 3.0 + 3.0 + 0.5) + 1.0
        assert SummationPredictor().predict(inputs) == pytest.approx(expected)

    def test_respects_calls_per_iteration(self):
        flow = ControlFlow([Kernel("A", 3), Kernel("B", 1)])
        inputs = PredictionInputs(
            flow=flow,
            iterations=10,
            loop_times={"A": 1.0, "B": 2.0},
        )
        assert SummationPredictor().predict(inputs) == pytest.approx(
            10 * (3 * 1.0 + 2.0)
        )


class TestCouplingPredictor:
    def test_uniform_coupling_scales_loop(self, inputs):
        pred = CouplingPredictor(2).predict(inputs)
        expected = 6.0 + 60 * 0.9 * 11.5
        assert pred == pytest.approx(expected)

    def test_chain_length_three(self, inputs):
        pred = CouplingPredictor(3).predict(inputs)
        assert pred == pytest.approx(6.0 + 60 * 0.85 * 11.5)

    def test_coefficients_exposed(self, inputs):
        coeffs = CouplingPredictor(2).coefficients(inputs)
        assert set(coeffs) == set(inputs.flow.names)
        assert all(c == pytest.approx(0.9) for c in coeffs.values())

    def test_name_matches_paper_rows(self):
        assert CouplingPredictor(3).name == "Coupling: 3 kernels"

    def test_length_one_rejected(self):
        with pytest.raises(PredictionError):
            CouplingPredictor(1)

    def test_missing_chains_raise(self, flow):
        inputs = PredictionInputs(
            flow=flow,
            iterations=10,
            loop_times={k: 1.0 for k in flow.names},
        )
        with pytest.raises(PredictionError, match="missing chain"):
            CouplingPredictor(2).predict(inputs)


class TestPredictionInputs:
    def test_missing_loop_time_rejected(self, flow):
        with pytest.raises(PredictionError, match="missing isolated"):
            PredictionInputs(flow=flow, iterations=1, loop_times={"CF": 1.0})

    def test_zero_iterations_rejected(self, flow):
        with pytest.raises(PredictionError):
            PredictionInputs(
                flow=flow,
                iterations=0,
                loop_times={k: 1.0 for k in flow.names},
            )

    def test_one_shot_total(self, inputs):
        assert inputs.one_shot_total == pytest.approx(6.0)


class TestPredictionReport:
    def test_errors_and_best(self):
        report = PredictionReport(
            actual=100.0,
            predictions={"Summation": 120.0, "Coupling: 3 kernels": 101.0},
        )
        assert report.relative_error("Summation") == pytest.approx(20.0)
        assert report.relative_error("Coupling: 3 kernels") == pytest.approx(1.0)
        assert report.best() == "Coupling: 3 kernels"
        assert set(report.errors()) == set(report.predictions)


class TestBestChainLength:
    def test_picks_lowest_error(self, inputs):
        actual = 6.0 + 60 * 0.85 * 11.5  # exactly the L=3 prediction
        length, err = best_chain_length(inputs, actual)
        assert length == 3
        assert err == pytest.approx(0.0, abs=1e-9)

    def test_skips_unmeasured_lengths(self, inputs):
        # Only lengths 2 and 3 were measured; 4 and 5 must be skipped.
        length, _ = best_chain_length(inputs, actual=1000.0)
        assert length in (2, 3)

    def test_no_measured_lengths_raises(self, flow):
        inputs = PredictionInputs(
            flow=flow,
            iterations=1,
            loop_times={k: 1.0 for k in flow.names},
        )
        with pytest.raises(PredictionError):
            best_chain_length(inputs, actual=1.0)

    def test_explicit_length_subset(self, inputs):
        length, _ = best_chain_length(inputs, actual=1.0, lengths=[2])
        assert length == 2
