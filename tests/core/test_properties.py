"""Property-based tests (hypothesis) on the coupling algebra's invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import kernel_coefficients
from repro.core.coupling import CouplingSet, coupling_value
from repro.core.kernel import ControlFlow
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    SummationPredictor,
)

# -- strategies -------------------------------------------------------------

kernel_names = st.integers(2, 7).map(
    lambda n: tuple(f"K{i}" for i in range(n))
)

positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def flow_with_measurements(draw, min_length=2):
    """A cyclic flow plus consistent isolated and chain measurements."""
    names = draw(kernel_names)
    flow = ControlFlow(names)
    length = draw(st.integers(min_length, len(names)))
    isolated = {k: draw(positive) for k in names}
    # Chain performance = coupling factor * isolated sum, factor in a
    # physically sensible range.
    factors = {
        w: draw(st.floats(0.5, 1.5, allow_nan=False))
        for w in flow.windows(length)
    }
    chains = {
        w: factors[w] * sum(isolated[k] for k in w)
        for w in flow.windows(length)
    }
    return flow, length, isolated, chains, factors


# -- window structure ---------------------------------------------------------


@given(kernel_names, st.data())
def test_cyclic_windows_cover_each_kernel_exactly_l_times(names, data):
    flow = ControlFlow(names)
    length = data.draw(st.integers(2, len(names)))
    windows = flow.windows(length)
    assert len(windows) == len(names)
    for kernel in names:
        count = sum(1 for w in windows for k in w if k == kernel)
        assert count == length


@given(kernel_names, st.data())
def test_windows_preserve_cyclic_adjacency(names, data):
    flow = ControlFlow(names)
    length = data.draw(st.integers(2, len(names)))
    adjacency = set(flow.adjacencies())
    for window in flow.windows(length):
        for a, b in zip(window, window[1:]):
            assert (a, b) in adjacency


# -- coupling values ------------------------------------------------------------


@given(st.lists(positive, min_size=1, max_size=6))
def test_no_interaction_coupling_is_exactly_one(parts):
    assert math.isclose(coupling_value(sum(parts), parts), 1.0)


@given(st.lists(positive, min_size=1, max_size=6), st.floats(0.1, 10.0))
def test_coupling_scales_linearly_with_chain_time(parts, factor):
    base = coupling_value(sum(parts), parts)
    scaled = coupling_value(factor * sum(parts), parts)
    assert math.isclose(scaled, factor * base, rel_tol=1e-12)


@given(st.lists(positive, min_size=2, max_size=6), st.floats(0.1, 10.0))
def test_coupling_is_unit_invariant(parts, unit):
    """Measuring in different units (ms vs s) cannot change C_S."""
    chain = 0.9 * sum(parts)
    a = coupling_value(chain, parts)
    b = coupling_value(unit * chain, [unit * p for p in parts])
    assert math.isclose(a, b, rel_tol=1e-12)


# -- coefficients -----------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(flow_with_measurements())
def test_coefficients_are_convex_combinations_of_couplings(bundle):
    flow, length, isolated, chains, factors = bundle
    cs = CouplingSet.from_performances(flow, length, chains, isolated)
    coeffs = kernel_coefficients(cs)
    values = cs.values()
    lo, hi = min(values.values()), max(values.values())
    for kernel, coeff in coeffs.items():
        assert lo - 1e-9 <= coeff <= hi + 1e-9
        # Tighter: bounded by the couplings of the windows containing it.
        own = [values[w] for w in flow.windows_containing(kernel, length)]
        assert min(own) - 1e-9 <= coeff <= max(own) + 1e-9


@settings(max_examples=60, deadline=None)
@given(flow_with_measurements(), st.floats(0.5, 1.5))
def test_uniform_coupling_gives_uniform_coefficients(bundle, factor):
    flow, length, isolated, _, _ = bundle
    chains = {
        w: factor * sum(isolated[k] for k in w) for w in flow.windows(length)
    }
    cs = CouplingSet.from_performances(flow, length, chains, isolated)
    for coeff in kernel_coefficients(cs).values():
        assert math.isclose(coeff, factor, rel_tol=1e-9)


# -- predictors -------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(flow_with_measurements(), st.integers(1, 500))
def test_neutral_couplings_reduce_to_summation(bundle, iterations):
    flow, length, isolated, _, _ = bundle
    chains = {w: sum(isolated[k] for k in w) for w in flow.windows(length)}
    inputs = PredictionInputs(
        flow=flow,
        iterations=iterations,
        loop_times=isolated,
        chain_times=chains,
    )
    coupling = CouplingPredictor(length).predict(inputs)
    summation = SummationPredictor().predict(inputs)
    assert math.isclose(coupling, summation, rel_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(flow_with_measurements(), st.integers(1, 500))
def test_constructive_couplings_predict_below_summation(bundle, iterations):
    flow, length, isolated, _, _ = bundle
    chains = {
        w: 0.8 * sum(isolated[k] for k in w) for w in flow.windows(length)
    }
    inputs = PredictionInputs(
        flow=flow,
        iterations=iterations,
        loop_times=isolated,
        chain_times=chains,
    )
    assert CouplingPredictor(length).predict(inputs) < SummationPredictor().predict(inputs)


@settings(max_examples=60, deadline=None)
@given(flow_with_measurements(), st.integers(1, 100), st.floats(0.1, 10.0))
def test_prediction_scales_with_units(bundle, iterations, unit):
    """Rescaling every measurement rescales the prediction identically."""
    flow, length, isolated, chains, _ = bundle
    inputs = PredictionInputs(
        flow=flow, iterations=iterations, loop_times=isolated, chain_times=chains
    )
    scaled = PredictionInputs(
        flow=flow,
        iterations=iterations,
        loop_times={k: unit * v for k, v in isolated.items()},
        chain_times={w: unit * v for w, v in chains.items()},
    )
    predictor = CouplingPredictor(length)
    assert math.isclose(
        predictor.predict(scaled),
        unit * predictor.predict(inputs),
        rel_tol=1e-9,
    )


@settings(max_examples=40, deadline=None)
@given(flow_with_measurements())
def test_coupling_set_roundtrips_chain_performance(bundle):
    flow, length, isolated, chains, factors = bundle
    cs = CouplingSet.from_performances(flow, length, chains, isolated)
    for window, factor in factors.items():
        assert math.isclose(cs[window].value, factor, rel_tol=1e-9)
