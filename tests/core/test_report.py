"""Paper-style table builders."""

import pytest

from repro.core.report import (
    average_error,
    coupling_value_table,
    dataset_table,
    execution_time_table,
)


class TestDatasetTable:
    def test_rows(self):
        table = dataset_table("Table 1", [("S", (12, 12, 12)), ("A", (64, 64, 64))])
        assert table.cell("S", "Size") == "12 x 12 x 12"
        assert table.row_labels() == ["S", "A"]


class TestCouplingTable:
    def test_layout(self):
        table = coupling_value_table(
            "Table 2a",
            [4, 9],
            {("X", "Y"): [0.8, 0.85], ("Y", "Z"): [0.7, 0.72]},
        )
        assert table.columns == ["Kernels", "4 procs", "9 procs"]
        assert table.cell("X, Y", "9 procs") == pytest.approx(0.85)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coupling_value_table("t", [4, 9], {("X", "Y"): [0.8]})


class TestExecutionTimeTable:
    def test_errors_embedded_in_cells(self):
        table = execution_time_table(
            "Table 3b",
            [4, 9],
            actual=[100.0, 50.0],
            predictions={"Summation": [120.0, 60.0]},
        )
        value, err = table.cell("Summation", "4 procs")
        assert value == 120.0
        assert err == pytest.approx(20.0)
        rendered = table.render()
        assert "120.00 (20.00 %)" in rendered
        assert "Actual" in rendered

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            execution_time_table(
                "t", [4], actual=[1.0, 2.0], predictions={}
            )
        with pytest.raises(ValueError):
            execution_time_table(
                "t", [4], actual=[1.0], predictions={"S": [1.0, 2.0]}
            )


class TestAverageError:
    def test_mean_of_percent_errors(self):
        assert average_error([110.0, 90.0], [100.0, 100.0]) == pytest.approx(10.0)
