"""Coupling-value reuse across configurations (§6 future work)."""

import pytest

from repro.core.coupling import CouplingSet
from repro.core.kernel import ControlFlow
from repro.core.reuse import CouplingStore
from repro.errors import PredictionError


@pytest.fixture
def flow():
    return ControlFlow(["A", "B", "C"])


def coupling_set(flow, factor):
    isolated = {"A": 1.0, "B": 2.0, "C": 3.0}
    chains = {w: factor * sum(isolated[k] for k in w) for w in flow.windows(2)}
    return CouplingSet.from_performances(flow, 2, chains, isolated)


class TestStore:
    def test_add_and_enumerate(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 4, coupling_set(flow, 0.9))
        store.add("W", 16, coupling_set(flow, 0.8))
        assert store.configurations() == [("W", 4), ("W", 16)]

    def test_chain_length_must_match(self, flow):
        store = CouplingStore(flow, 3)
        with pytest.raises(PredictionError):
            store.add("W", 4, coupling_set(flow, 0.9))

    def test_empty_store_raises(self, flow):
        with pytest.raises(PredictionError, match="empty"):
            CouplingStore(flow, 2).nearest("W", 4)


class TestNearest:
    def test_prefers_same_class(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 4, coupling_set(flow, 0.9))
        store.add("A", 4, coupling_set(flow, 0.8))
        cls, procs, _ = store.nearest("A", 9)
        assert (cls, procs) == ("A", 4)

    def test_log_distance_in_procs(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 4, coupling_set(flow, 0.9))
        store.add("W", 16, coupling_set(flow, 0.8))
        # 9 procs: log(9/4)=0.81 vs log(16/9)=0.58 -> 16 is nearer.
        _, procs, _ = store.nearest("W", 9)
        assert procs == 16

    def test_falls_back_to_other_class(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 4, coupling_set(flow, 0.9))
        cls, _, _ = store.nearest("B", 4)
        assert cls == "W"


class TestReusedPrediction:
    def test_exact_when_borrowing_from_same_config(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 4, coupling_set(flow, 0.9))
        loop = {"A": 1.0, "B": 2.0, "C": 3.0}
        result = store.predict("W", 4, iterations=10, loop_times=loop)
        assert not result.borrowed
        # Uniform 0.9 coupling: prediction = 10 * 0.9 * 6.
        assert result.predicted == pytest.approx(54.0)

    def test_borrowed_flag_and_source(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 16, coupling_set(flow, 0.8))
        result = store.predict(
            "W", 4, iterations=10, loop_times={"A": 2.0, "B": 4.0, "C": 6.0}
        )
        assert result.borrowed
        assert result.source_nprocs == 16
        assert result.predicted == pytest.approx(10 * 0.8 * 12.0)

    def test_pre_post_added_unscaled(self, flow):
        store = CouplingStore(flow, 2)
        store.add("W", 4, coupling_set(flow, 0.5))
        result = store.predict(
            "W",
            4,
            iterations=1,
            loop_times={"A": 1.0, "B": 1.0, "C": 1.0},
            pre_times={"INIT": 100.0},
        )
        assert result.predicted == pytest.approx(100.0 + 1.5)
