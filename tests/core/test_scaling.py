"""Scaling studies on the simulated machine (small configurations)."""

import pytest

from repro.core.scaling import CouplingScalingStudy
from repro.errors import ConfigurationError
from repro.instrument import MeasurementConfig
from repro.simmachine import ibm_sp_argonne


@pytest.fixture(scope="module")
def study():
    s = CouplingScalingStudy(
        "BT",
        ibm_sp_argonne(),
        chain_length=2,
        measurement=MeasurementConfig(repetitions=2, warmup=1),
    )
    s.sweep_procs("S", [1, 4])
    return s


class TestSweeps:
    def test_points_recorded(self, study):
        assert len(study.points) == 2
        assert [p.nprocs for p in study.points] == [1, 4]

    def test_footprint_shrinks_with_procs(self, study):
        a, b = study.points
        assert b.footprint_bytes < a.footprint_bytes

    def test_couplings_cover_all_windows(self, study):
        for point in study.points:
            assert len(point.couplings) == 5  # N windows for 5 kernels
            assert all(v > 0 for v in point.couplings.values())

    def test_series_extraction(self, study):
        series = study.series(("X_SOLVE", "Y_SOLVE"))
        assert len(series) == 2

    def test_unknown_window_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.series(("X_SOLVE", "Z_SOLVE"))

    def test_empty_study_rejected(self):
        empty = CouplingScalingStudy("BT", ibm_sp_argonne())
        with pytest.raises(ConfigurationError):
            empty.series(("X_SOLVE", "Y_SOLVE"))


class TestTransitionAnalysis:
    def test_analysis_fields(self, study):
        analysis = study.transition_analysis(("X_SOLVE", "Y_SOLVE"))
        assert analysis.window == ("X_SOLVE", "Y_SOLVE")
        assert len(analysis.couplings) == 2
        assert len(analysis.capacities) == 2  # L1 and L2
        assert analysis.observed >= 0
        assert analysis.expected >= 0

    def test_class_sweep(self):
        study = CouplingScalingStudy(
            "BT",
            ibm_sp_argonne(),
            chain_length=2,
            measurement=MeasurementConfig(repetitions=2, warmup=1),
        )
        points = study.sweep_classes(["S", "W"], nprocs=4)
        assert [p.problem_class for p in points] == ["S", "W"]
        assert points[1].footprint_bytes > points[0].footprint_bytes
