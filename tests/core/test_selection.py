"""Cross-validated chain-length selection."""

import pytest

from repro.core.kernel import ControlFlow
from repro.core.selection import ChainLengthSelector, TrainingCase
from repro.core.predictor import PredictionInputs
from repro.errors import PredictionError


def make_case(factor_by_length, actual_factor, iterations=10):
    """A case where chains of length L have coupling factor_by_length[L]."""
    flow = ControlFlow(["A", "B", "C", "D"])
    loop = {"A": 1.0, "B": 2.0, "C": 3.0, "D": 4.0}
    chains = {}
    for length, factor in factor_by_length.items():
        for w in flow.windows(length):
            chains[w] = factor * sum(loop[k] for k in w)
    inputs = PredictionInputs(
        flow=flow, iterations=iterations, loop_times=loop, chain_times=chains
    )
    actual = iterations * actual_factor * sum(loop.values())
    return TrainingCase(inputs, actual, label="case")


class TestFit:
    def test_picks_matching_length(self):
        # Actual behaves like the L=3 chains (factor 0.8); L=2 is off.
        case = make_case({2: 0.9, 3: 0.8}, actual_factor=0.8)
        selector = ChainLengthSelector([2, 3]).fit([case])
        assert selector.best_length == 3
        assert selector.training_errors[3] == pytest.approx(0.0, abs=1e-9)

    def test_skips_unmeasured_lengths(self):
        case = make_case({2: 0.9}, actual_factor=0.9)
        selector = ChainLengthSelector([2, 3, 4]).fit([case])
        assert selector.best_length == 2
        assert set(selector.training_errors) == {2}

    def test_no_measurable_length_raises(self):
        case = make_case({}, actual_factor=1.0)
        with pytest.raises(PredictionError, match="no candidate"):
            ChainLengthSelector([2, 3]).fit([case])

    def test_empty_training_raises(self):
        with pytest.raises(PredictionError):
            ChainLengthSelector().fit([])

    def test_invalid_lengths_rejected(self):
        with pytest.raises(PredictionError):
            ChainLengthSelector([1, 2])
        with pytest.raises(PredictionError):
            ChainLengthSelector([])

    def test_averages_over_cases(self):
        # L=2 slightly better on case1, much worse on case2; on average
        # L=3 must win: errors L2 = (2.4 + 15.8)/2, L3 = (3.7 + 10.5)/2.
        case1 = make_case({2: 0.8, 3: 0.85}, actual_factor=0.82)
        case2 = make_case({2: 0.8, 3: 0.85}, actual_factor=0.95)
        selector = ChainLengthSelector([2, 3]).fit([case1, case2])
        assert selector.best_length == 3


class TestPredictAndEvaluate:
    def test_predict_uses_selected_length(self):
        case = make_case({2: 0.9, 3: 0.8}, actual_factor=0.8)
        selector = ChainLengthSelector([2, 3]).fit([case])
        assert selector.predict(case.inputs) == pytest.approx(case.actual)

    def test_predict_before_fit_raises(self):
        case = make_case({2: 0.9}, actual_factor=0.9)
        with pytest.raises(PredictionError, match="not fitted"):
            ChainLengthSelector([2]).predict(case.inputs)

    def test_evaluate_reports_per_case_errors(self):
        train = make_case({2: 0.8}, actual_factor=0.8)
        test = make_case({2: 0.8}, actual_factor=0.9)
        selector = ChainLengthSelector([2]).fit([train])
        errors = selector.evaluate([test])
        assert list(errors) == ["case"]
        # predicted 0.8*sum vs actual 0.9*sum -> |0.8-0.9|/0.9.
        assert errors["case"] == pytest.approx(100 * (0.1 / 0.9))
