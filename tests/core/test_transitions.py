"""Coupling transition counting and capacity-crossing analysis."""

import pytest

from repro.core.transitions import (
    TransitionAnalysis,
    count_transitions,
    expected_transitions,
)
from repro.errors import ConfigurationError


class TestCountTransitions:
    def test_flat_series_has_none(self):
        assert count_transitions([0.8, 0.8, 0.8, 0.8]) == 0

    def test_small_wiggles_ignored(self):
        assert count_transitions([0.80, 0.81, 0.80, 0.79], threshold=0.05) == 0

    def test_single_jump(self):
        assert count_transitions([0.95, 0.95, 0.80, 0.80]) == 1

    def test_gradual_monotone_slide_counts_once(self):
        # 0.98 -> 0.9 -> 0.82 -> 0.75: one regime change, not three.
        assert count_transitions([0.98, 0.90, 0.82, 0.75], threshold=0.05) == 1

    def test_two_opposite_transitions(self):
        assert count_transitions([1.0, 0.8, 0.8, 1.0]) == 2

    def test_plateau_resets_direction(self):
        # Down, flat plateau, down again: two distinct transitions.
        assert (
            count_transitions([1.0, 0.9, 0.9, 0.9, 0.8], threshold=0.05) == 2
        )

    def test_short_series(self):
        assert count_transitions([0.8]) == 0
        assert count_transitions([]) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            count_transitions([1.0, 2.0], threshold=0.0)
        with pytest.raises(ConfigurationError):
            count_transitions([1.0, -1.0])


class TestExpectedTransitions:
    def test_no_crossing(self):
        assert expected_transitions([100, 200, 300], capacities=[1000]) == 0

    def test_one_crossing_per_capacity(self):
        # Working set shrinks through both cache capacities.
        assert (
            expected_transitions(
                [4000, 1500, 600, 200], capacities=[1000, 2000]
            )
            == 2
        )

    def test_crossing_back_counts_again(self):
        assert expected_transitions([500, 1500, 500], capacities=[1000]) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_transitions([1, 2], capacities=[])
        with pytest.raises(ConfigurationError):
            expected_transitions([1, 2], capacities=[-5])

    def test_short_series(self):
        assert expected_transitions([100], capacities=[10]) == 0


class TestTransitionAnalysis:
    def make(self, couplings, footprints, capacities=(1000.0, 8000.0)):
        return TransitionAnalysis(
            window=("X", "Y"),
            scale_labels=tuple(str(i) for i in range(len(couplings))),
            couplings=tuple(couplings),
            footprints=tuple(footprints),
            capacities=tuple(capacities),
        )

    def test_observed_and_expected(self):
        analysis = self.make(
            couplings=[0.95, 0.95, 0.80, 0.80],
            footprints=[20000, 9000, 4000, 3000],
        )
        assert analysis.observed == 1
        assert analysis.expected == 1

    def test_finite_property(self):
        """The paper's claim: at most one regime change per cache level."""
        analysis = self.make(
            couplings=[0.95, 0.85, 0.75, 0.74],
            footprints=[20000, 5000, 800, 700],
        )
        assert analysis.finite

    def test_not_finite_when_oscillating(self):
        analysis = self.make(
            couplings=[1.0, 0.7, 1.0, 0.7, 1.0, 0.7],
            footprints=[100] * 6,
        )
        assert not analysis.finite
