"""Noise propagation into prediction intervals."""

import pytest

from repro.core.kernel import ControlFlow
from repro.core.predictor import CouplingPredictor, PredictionInputs
from repro.core.uncertainty import (
    MeasuredQuantity,
    prediction_interval,
)
from repro.errors import ConfigurationError, PredictionError


@pytest.fixture
def flow():
    return ControlFlow(["A", "B", "C"])


def quantities(flow, sem_frac):
    loop = {
        k: MeasuredQuantity(mean, sem_frac * mean)
        for k, mean in zip(flow.names, (1.0, 2.0, 3.0))
    }
    chains = {
        w: MeasuredQuantity(
            0.8 * sum(loop[k].mean for k in w),
            sem_frac * 0.8 * sum(loop[k].mean for k in w),
        )
        for w in flow.windows(2)
    }
    return loop, chains


class TestMeasuredQuantity:
    def test_from_measurement(self):
        from repro.instrument.runner import Measurement

        m = Measurement(
            benchmark="BT",
            problem_class="S",
            nprocs=4,
            kernels=("A",),
            samples=(1.0, 1.2, 0.8, 1.0),
            overhead=0.0,
        )
        q = MeasuredQuantity.from_measurement(m)
        assert q.mean == pytest.approx(1.0)
        assert q.sem > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeasuredQuantity(0.0, 0.1)
        with pytest.raises(ConfigurationError):
            MeasuredQuantity(1.0, -0.1)


class TestInterval:
    def test_zero_noise_is_point_estimate(self, flow):
        loop, chains = quantities(flow, sem_frac=0.0)
        interval = prediction_interval(flow, 10, loop, chains, 2, draws=50)
        exact = CouplingPredictor(2).predict(
            PredictionInputs(
                flow=flow,
                iterations=10,
                loop_times={k: q.mean for k, q in loop.items()},
                chain_times={w: q.mean for w, q in chains.items()},
            )
        )
        assert interval.std == pytest.approx(0.0, abs=1e-12)
        assert interval.mean == pytest.approx(exact)
        assert interval.contains(exact)

    def test_interval_widens_with_noise(self, flow):
        narrow = prediction_interval(
            flow, 10, *quantities(flow, 0.01), 2, draws=300, seed=1
        )
        wide = prediction_interval(
            flow, 10, *quantities(flow, 0.10), 2, draws=300, seed=1
        )
        assert wide.relative_halfwidth > narrow.relative_halfwidth

    def test_seeded_reproducibility(self, flow):
        a = prediction_interval(flow, 10, *quantities(flow, 0.05), 2, seed=3)
        b = prediction_interval(flow, 10, *quantities(flow, 0.05), 2, seed=3)
        assert a == b

    def test_interval_covers_noiseless_truth(self, flow):
        loop, chains = quantities(flow, 0.05)
        truth = CouplingPredictor(2).predict(
            PredictionInputs(
                flow=flow,
                iterations=10,
                loop_times={k: q.mean for k, q in loop.items()},
                chain_times={w: q.mean for w, q in chains.items()},
            )
        )
        interval = prediction_interval(flow, 10, loop, chains, 2, draws=500, seed=7)
        assert interval.contains(truth)

    def test_pre_post_included(self, flow):
        loop, chains = quantities(flow, 0.0)
        interval = prediction_interval(
            flow,
            1,
            loop,
            chains,
            2,
            pre={"INIT": MeasuredQuantity(100.0, 0.0)},
            draws=20,
        )
        assert interval.mean > 100.0

    def test_minimum_draws_enforced(self, flow):
        loop, chains = quantities(flow, 0.01)
        with pytest.raises(PredictionError):
            prediction_interval(flow, 10, loop, chains, 2, draws=5)

    def test_class_s_magnification(self):
        """Smaller absolute times with the same absolute noise floor give
        relatively wider intervals — the paper's class-S observation."""
        flow = ControlFlow(["A", "B"])

        def build(scale):
            loop = {
                "A": MeasuredQuantity(scale, 0.01),
                "B": MeasuredQuantity(scale, 0.01),
            }
            chains = {
                w: MeasuredQuantity(0.9 * 2 * scale, 0.01)
                for w in flow.windows(2)
            }
            return prediction_interval(flow, 10, loop, chains, 2, draws=300, seed=5)

        small = build(scale=0.1)   # class-S-like
        large = build(scale=10.0)  # class-A-like
        assert small.relative_halfwidth > large.relative_halfwidth
