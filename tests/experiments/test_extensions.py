"""Extension experiment drivers (the fast ones; the rest run as benchmarks)."""

import pytest

from repro.experiments import ExperimentPipeline, ExperimentSettings, run_experiment
from repro.instrument import MeasurementConfig


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(repetitions=3, warmup=1)
        )
    )


class TestMissCoupling:
    def test_both_metrics_constructive(self, pipeline):
        result = run_experiment("ext_miss_coupling", pipeline=pipeline)
        for _pair, time_c, miss_c in result.table.rows:
            assert 0 < miss_c < time_c < 1.0

    def test_table_covers_all_pairs(self, pipeline):
        result = run_experiment("ext_miss_coupling", pipeline=pipeline)
        assert len(result.table.rows) == 5


class TestComposition:
    def test_equations_rendered(self, pipeline):
        result = run_experiment("ext_composition", pipeline=pipeline)
        for _config, equation in result.table.rows:
            assert equation.startswith("T = T_pre + ")
            assert "*E_" in equation

    def test_evaluation_close_to_actual(self, pipeline):
        result = run_experiment("ext_composition", pipeline=pipeline)
        for obs in result.observations:
            percent = float(obs.rsplit("within ", 1)[1].split(" %")[0])
            assert percent < 5.0
