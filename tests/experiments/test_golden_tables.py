"""Golden regression tests: table generation pinned against checked-in CSVs.

One table per benchmark family — BT (table2b), SP (table6a), LU (table8a)
— generated with a small, fixed measurement protocol and compared as
exact CSV strings. Any drift in the simulator, the measurement harness,
the coupling algebra, or the table formatter shows up as a diff here.

To intentionally re-pin after a behaviour change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/experiments/test_golden_tables.py
"""

import os
from pathlib import Path

import pytest

from repro.experiments.pipeline import ExperimentSettings
from repro.experiments.registry import run_experiment
from repro.instrument import MeasurementConfig

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The pinned protocol — tiny but non-trivial (noise on, 2 repetitions).
SETTINGS = ExperimentSettings(
    measurement=MeasurementConfig(repetitions=2, warmup=1, seed=0)
)

#: experiment id -> (benchmark family, golden file)
GOLDENS = {
    "table2b": ("BT", "table2b_bt_class_w.csv"),
    "table6a": ("SP", "table6a_sp_class_a.csv"),
    "table8a": ("LU", "table8a_lu_class_a.csv"),
}


def regen_requested() -> bool:
    return os.environ.get("REPRO_REGEN_GOLDENS", "") not in ("", "0")


@pytest.mark.parametrize(
    "experiment_id", sorted(GOLDENS), ids=[f"{GOLDENS[k][0]}-{k}" for k in sorted(GOLDENS)]
)
def test_table_matches_golden(experiment_id):
    family, filename = GOLDENS[experiment_id]
    golden_path = GOLDEN_DIR / filename
    result = run_experiment(experiment_id, settings=SETTINGS)
    generated = result.table.to_csv()
    if regen_requested():
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(generated, encoding="utf-8")
        pytest.skip(f"regenerated {filename}")
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; regenerate with "
        "REPRO_REGEN_GOLDENS=1"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert generated == expected, (
        f"{family} {experiment_id} drifted from its golden CSV "
        f"({filename}); if intentional, re-pin with REPRO_REGEN_GOLDENS=1"
    )


def test_goldens_contain_actual_and_coupling_rows():
    """The pinned artifacts themselves stay structurally meaningful."""
    if regen_requested():
        pytest.skip("regenerating")
    for _family, filename in GOLDENS.values():
        text = (GOLDEN_DIR / filename).read_text(encoding="utf-8")
        lines = text.strip().splitlines()
        assert lines[0].startswith("Prediction,")
        labels = [line.split(",", 1)[0] for line in lines[1:]]
        assert "Actual" in labels
        assert "Summation" in labels
        assert any(label.startswith("Coupling:") for label in labels)
