"""Experiment registry and paper reference data."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    PAPER_TABLES,
    ExperimentPipeline,
    ExperimentSettings,
    run_experiment,
)
from repro.instrument import MeasurementConfig

# Importing the drivers populates the registry.
import repro.experiments.bt_tables  # noqa: F401
import repro.experiments.cross_machine  # noqa: F401
import repro.experiments.extensions  # noqa: F401
import repro.experiments.extrapolation_exp  # noqa: F401
import repro.experiments.lu_tables  # noqa: F401
import repro.experiments.scaling_exp  # noqa: F401
import repro.experiments.sp_tables  # noqa: F401

ALL_TABLE_IDS = {
    "table1", "table2a", "table2b", "table3a", "table3b", "table4a",
    "table4b", "table5", "table6a", "table6b", "table6c", "table7",
    "table8a", "table8b", "table8c", "scaling",
}

EXTENSION_IDS = {
    "ext_best_chain",
    "ext_miss_coupling",
    "ext_composition",
    "ext_cross_machine",
    "ext_extrapolation",
}


class TestRegistryCompleteness:
    def test_every_paper_table_has_an_experiment(self):
        assert set(EXPERIMENTS) == ALL_TABLE_IDS | EXTENSION_IDS

    def test_every_paper_experiment_has_paper_reference(self):
        assert set(PAPER_TABLES) == ALL_TABLE_IDS

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("table42")


class TestPaperData:
    def test_error_rows_align_with_proc_counts(self):
        for table in PAPER_TABLES.values():
            for row in table.errors.values():
                assert len(row) == len(table.proc_counts)

    def test_paper_coupling_beats_summation_in_big_tables(self):
        """Sanity on the transcribed numbers themselves."""
        for tid in ("table3b", "table4b", "table6a", "table6b", "table8b"):
            table = PAPER_TABLES[tid]
            summ = table.errors["Summation"]
            for name, row in table.errors.items():
                if name == "Summation":
                    continue
                assert sum(row) / len(row) < sum(summ) / len(summ)

    def test_averages_match_rows(self):
        """The prose averages must equal the mean of the table rows —
        except where the paper itself is internally inconsistent, which
        the reference data documents via notes."""
        for table in PAPER_TABLES.values():
            for name, avg in table.average_errors.items():
                row = table.errors[name]
                mean = sum(row) / len(row)
                if mean != pytest.approx(avg, abs=0.02):
                    assert any("inconsistency" in n for n in table.notes), (
                        table.table_id,
                        name,
                    )


class TestDatasetExperiments:
    @pytest.mark.parametrize(
        "tid,expected",
        [
            ("table1", ["S", "W", "A"]),
            ("table5", ["W", "A", "B"]),
            ("table7", ["W", "A", "B"]),
        ],
    )
    def test_dataset_tables(self, tid, expected):
        result = run_experiment(tid)
        assert result.table.row_labels() == expected


class TestSmallRun:
    def test_table2a_and_2b_share_measurements(self):
        settings = ExperimentSettings(
            measurement=MeasurementConfig(repetitions=2, warmup=1)
        )
        pipeline = ExperimentPipeline(settings)
        r2a = run_experiment("table2a", pipeline=pipeline)
        r2b = run_experiment("table2b", pipeline=pipeline)
        assert len(r2a.table.rows) == 5  # five kernel pairs
        assert r2b.table.row_labels() == [
            "Actual", "Summation", "Coupling: 2 kernels",
        ]
        assert "Coupling: 2 kernels" in r2b.measured_errors

    def test_comparison_text_mentions_paper(self):
        settings = ExperimentSettings(
            measurement=MeasurementConfig(repetitions=2, warmup=1)
        )
        result = run_experiment("table2b", pipeline=ExperimentPipeline(settings))
        text = result.comparison()
        assert "paper" in text
        assert "measured errors" in text
