"""Cache-miss counters and the cache-miss coupling metric."""

import pytest

from repro.core import ControlFlow, CouplingSet
from repro.core.metrics import Metric
from repro.errors import MeasurementError
from repro.instrument import ChainRunner, MeasurementConfig, cache_report
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


@pytest.fixture(scope="module")
def runner():
    bench = make_benchmark("BT", "S", 4)
    return ChainRunner(
        bench, ibm_sp_argonne(), MeasurementConfig(repetitions=3, warmup=1)
    )


class TestCacheReport:
    def test_aggregates_chain_kernels(self, runner):
        m = runner.measure(("X_SOLVE", "Y_SOLVE"))
        report = cache_report(m)
        assert report.kernels == ("X_SOLVE", "Y_SOLVE")
        assert report.bytes_touched > 0
        assert 0.0 <= report.miss_ratio <= 1.0

    def test_subset_selection(self, runner):
        m = runner.measure(("X_SOLVE", "Y_SOLVE"))
        sub = cache_report(m, ["Y_SOLVE"])
        full = cache_report(m)
        assert sub.bytes_touched < full.bytes_touched

    def test_unknown_kernel_rejected(self, runner):
        m = runner.measure(("ADD",))
        with pytest.raises(MeasurementError):
            cache_report(m, ["X_SOLVE"])

    def test_chain_misses_fewer_than_isolated(self, runner):
        """Cache-miss coupling: the pair misses less than isolated runs."""
        x = cache_report(runner.measure(("X_SOLVE",)))
        y = cache_report(runner.measure(("Y_SOLVE",)))
        xy = cache_report(runner.measure(("X_SOLVE", "Y_SOLVE")))
        assert xy.bytes_from_memory < x.bytes_from_memory + y.bytes_from_memory


class TestCacheMissCouplingMetric:
    def test_coupling_set_over_misses(self, runner):
        """§2: the formulation applies to cache misses (additive metric)."""
        bench = runner.benchmark
        flow = ControlFlow(bench.loop_kernel_names)
        isolated = {
            k: float(
                cache_report(runner.measure((k,))).bytes_from_memory
            )
            for k in flow.names
        }
        chains = {
            w: float(cache_report(runner.measure(w)).bytes_from_memory)
            for w in flow.windows(2)
        }
        cs = CouplingSet.from_performances(
            flow, 2, chains, isolated, metric=Metric.CACHE_MISSES
        )
        values = list(cs.values().values())
        assert all(v > 0 for v in values)
        # The solve chain shares its whole working set: strongly constructive.
        assert cs[("X_SOLVE", "Y_SOLVE")].value < 0.95
