"""Prophesy-like performance database."""

import threading

import pytest

from repro.errors import MeasurementError
from repro.instrument import ChainRunner, MeasurementConfig, PerformanceDatabase
from repro.instrument.runner import Measurement
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


def meas(kernels=("A",), samples=(1.0, 1.1), cls="S", nprocs=4):
    return Measurement(
        benchmark="BT",
        problem_class=cls,
        nprocs=nprocs,
        kernels=tuple(kernels),
        samples=tuple(samples),
        overhead=0.01,
    )


class TestStoreAndGet:
    def test_roundtrip(self):
        with PerformanceDatabase() as db:
            original = meas()
            db.store(original)
            loaded = db.get("BT", "S", 4, ("A",))
            assert loaded.samples == original.samples
            assert loaded.overhead == original.overhead
            assert loaded.mean == pytest.approx(original.mean)

    def test_missing_returns_none(self):
        with PerformanceDatabase() as db:
            assert db.get("BT", "S", 4, ("A",)) is None

    def test_duplicate_rejected(self):
        with PerformanceDatabase() as db:
            db.store(meas())
            with pytest.raises(MeasurementError, match="already stored"):
                db.store(meas())

    def test_replace_allowed(self):
        with PerformanceDatabase() as db:
            db.store(meas(samples=(1.0,)))
            db.store(meas(samples=(2.0,)), replace=True)
            assert db.get("BT", "S", 4, ("A",)).samples == (2.0,)

    def test_key_includes_chain_order(self):
        with PerformanceDatabase() as db:
            db.store(meas(kernels=("A", "B")))
            db.store(meas(kernels=("B", "A")))
            assert len(db) == 2

    def test_iteration_in_insert_order(self):
        with PerformanceDatabase() as db:
            db.store(meas(kernels=("A",)))
            db.store(meas(kernels=("B",)))
            assert [m.kernels for m in db] == [("A",), ("B",)]

    def test_persists_to_file(self, tmp_path):
        path = str(tmp_path / "perf.sqlite")
        with PerformanceDatabase(path) as db:
            db.store(meas())
        with PerformanceDatabase(path) as db2:
            assert len(db2) == 1
            assert db2.get("BT", "S", 4, ("A",)) is not None


class TestMemoization:
    def test_get_or_measure_runs_once(self):
        bench = make_benchmark("BT", "S", 4)
        runner = ChainRunner(
            bench, ibm_sp_argonne(), MeasurementConfig(repetitions=2)
        )
        with PerformanceDatabase() as db:
            first = db.get_or_measure(runner, ("ADD",))
            second = db.get_or_measure(runner, ("ADD",))
            assert first.samples == second.samples
            assert len(db) == 1


class TestStoreIfAbsent:
    def test_first_write_wins_and_everyone_sees_it(self):
        with PerformanceDatabase() as db:
            winner = db.store_if_absent(meas(samples=(1.0,)))
            loser = db.store_if_absent(meas(samples=(2.0,)))
            assert winner.samples == (1.0,)
            assert loser.samples == (1.0,)  # the stored record, not its own
            assert len(db) == 1

    def test_plain_store_still_rejects_duplicates(self):
        with PerformanceDatabase() as db:
            db.store_if_absent(meas())
            with pytest.raises(MeasurementError, match="already stored"):
                db.store(meas())


class _StubRunner:
    """A fake ChainRunner that counts how many times it measures."""

    class _Size:
        problem_class = "S"

    class _Bench:
        name = "BT"
        nprocs = 4
        size = None  # filled in __init__

    def __init__(self):
        self.benchmark = self._Bench()
        self.benchmark.size = self._Size()
        self.calls = 0
        self._lock = threading.Lock()

    def measure(self, kernels):
        with self._lock:
            self.calls += 1
        return Measurement(
            benchmark="BT",
            problem_class="S",
            nprocs=4,
            kernels=tuple(kernels),
            samples=(1.0, 1.1),
            overhead=0.0,
        )


class TestConcurrency:
    """The serving layer hammers one database from a worker pool."""

    def _hammer(self, db, threads=8, keys=4, rounds=25):
        runner = _StubRunner()
        errors = []
        barrier = threading.Barrier(threads)

        def worker():
            try:
                barrier.wait(timeout=10)
                for i in range(rounds):
                    chain = (f"K{i % keys}",)
                    got = db.get_or_measure(runner, chain)
                    assert got.kernels == chain
            except Exception as exc:  # pragma: no cover — failure path
                errors.append(exc)

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert not errors
        return runner

    def test_threaded_get_or_measure_in_memory(self):
        with PerformanceDatabase() as db:
            self._hammer(db)
            assert len(db) == 4  # one row per distinct chain, no dupes

    def test_threaded_get_or_measure_file_backed(self, tmp_path):
        path = str(tmp_path / "hammer.sqlite")
        with PerformanceDatabase(path) as db:
            self._hammer(db)
            assert len(db) == 4
        with PerformanceDatabase(path) as reopened:
            assert len(reopened) == 4

    def test_racing_store_if_absent_keeps_one_row(self):
        with PerformanceDatabase() as db:
            barrier = threading.Barrier(8)
            results = []

            def worker(value):
                barrier.wait(timeout=10)
                results.append(db.store_if_absent(meas(samples=(value,))))

            threads = [
                threading.Thread(target=worker, args=(float(i),))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(db) == 1
            stored = db.get("BT", "S", 4, ("A",))
            assert all(r.samples == stored.samples for r in results)
