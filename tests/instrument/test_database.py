"""Prophesy-like performance database."""

import pytest

from repro.errors import MeasurementError
from repro.instrument import ChainRunner, MeasurementConfig, PerformanceDatabase
from repro.instrument.runner import Measurement
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


def meas(kernels=("A",), samples=(1.0, 1.1), cls="S", nprocs=4):
    return Measurement(
        benchmark="BT",
        problem_class=cls,
        nprocs=nprocs,
        kernels=tuple(kernels),
        samples=tuple(samples),
        overhead=0.01,
    )


class TestStoreAndGet:
    def test_roundtrip(self):
        with PerformanceDatabase() as db:
            original = meas()
            db.store(original)
            loaded = db.get("BT", "S", 4, ("A",))
            assert loaded.samples == original.samples
            assert loaded.overhead == original.overhead
            assert loaded.mean == pytest.approx(original.mean)

    def test_missing_returns_none(self):
        with PerformanceDatabase() as db:
            assert db.get("BT", "S", 4, ("A",)) is None

    def test_duplicate_rejected(self):
        with PerformanceDatabase() as db:
            db.store(meas())
            with pytest.raises(MeasurementError, match="already stored"):
                db.store(meas())

    def test_replace_allowed(self):
        with PerformanceDatabase() as db:
            db.store(meas(samples=(1.0,)))
            db.store(meas(samples=(2.0,)), replace=True)
            assert db.get("BT", "S", 4, ("A",)).samples == (2.0,)

    def test_key_includes_chain_order(self):
        with PerformanceDatabase() as db:
            db.store(meas(kernels=("A", "B")))
            db.store(meas(kernels=("B", "A")))
            assert len(db) == 2

    def test_iteration_in_insert_order(self):
        with PerformanceDatabase() as db:
            db.store(meas(kernels=("A",)))
            db.store(meas(kernels=("B",)))
            assert [m.kernels for m in db] == [("A",), ("B",)]

    def test_persists_to_file(self, tmp_path):
        path = str(tmp_path / "perf.sqlite")
        with PerformanceDatabase(path) as db:
            db.store(meas())
        with PerformanceDatabase(path) as db2:
            assert len(db2) == 1
            assert db2.get("BT", "S", 4, ("A",)) is not None


class TestMemoization:
    def test_get_or_measure_runs_once(self):
        bench = make_benchmark("BT", "S", 4)
        runner = ChainRunner(
            bench, ibm_sp_argonne(), MeasurementConfig(repetitions=2)
        )
        with PerformanceDatabase() as db:
            first = db.get_or_measure(runner, ("ADD",))
            second = db.get_or_measure(runner, ("ADD",))
            assert first.samples == second.samples
            assert len(db) == 1
