"""Application profiler."""

import pytest

from repro.instrument import profile_application
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


@pytest.fixture(scope="module")
def report():
    bench = make_benchmark("BT", "S", 4)
    return profile_application(bench, ibm_sp_argonne())


class TestProfile:
    def test_covers_all_kernels(self, report):
        bench_kernels = make_benchmark("BT", "S", 4).kernel_names()
        assert set(report.kernels) == set(bench_kernels)

    def test_solves_dominate_bt(self, report):
        dominant = report.dominant_kernel()
        assert dominant in ("X_SOLVE", "Y_SOLVE", "Z_SOLVE", "COPY_FACES")

    def test_fractions_bounded(self, report):
        for prof in report.kernels.values():
            assert 0.0 <= prof.wait_fraction <= 1.0
            assert 0.0 <= prof.miss_ratio <= 1.0

    def test_total_time_consistent(self, report):
        for prof in report.kernels.values():
            assert prof.total_time == pytest.approx(
                prof.compute_time + prof.memory_time + prof.wait_time
            )

    def test_render_mentions_every_kernel(self, report):
        text = report.render()
        for kernel in report.kernels:
            assert kernel in text

    def test_communicating_kernels_show_waits(self, report):
        assert report.kernels["COPY_FACES"].wait_time > 0
        assert report.kernels["Z_SOLVE"].wait_time == 0
