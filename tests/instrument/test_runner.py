"""Measurement harness: the paper's isolation protocol."""

import pytest

from repro.errors import MeasurementError
from repro.instrument import ApplicationRunner, ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


@pytest.fixture(scope="module")
def machine_config():
    return ibm_sp_argonne()


@pytest.fixture(scope="module")
def bench():
    return make_benchmark("BT", "S", 4)


@pytest.fixture(scope="module")
def runner(bench, machine_config):
    return ChainRunner(
        bench, machine_config, MeasurementConfig(repetitions=3, warmup=1)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(repetitions=0)
        with pytest.raises(MeasurementError):
            MeasurementConfig(warmup=-1)
        with pytest.raises(MeasurementError):
            MeasurementConfig(isolated_context="bogus")

    def test_context_for_dispatch(self):
        cfg = MeasurementConfig(isolated_context="flush", chain_context="none")
        assert cfg.context_for(("A",)) == "flush"
        assert cfg.context_for(("A", "B")) == "none"


class TestMeasure:
    def test_samples_match_repetitions(self, runner):
        m = runner.measure(("ADD",))
        assert len(m.samples) == 3
        assert m.mean > 0

    def test_overhead_subtracted(self, runner):
        m = runner.measure(("ADD",))
        assert m.overhead > 0
        # Raw per-iteration time must exceed the subtracted value.
        assert all(s >= 0 for s in m.samples)

    def test_overhead_cached(self, bench, machine_config):
        runner = ChainRunner(
            bench, machine_config, MeasurementConfig(repetitions=2)
        )
        first = runner.measure_overhead()
        assert runner.measure_overhead() == first

    def test_chain_measurement_includes_all_kernels(self, runner):
        m = runner.measure(("X_SOLVE", "Y_SOLVE"))
        assert m.kernels == ("X_SOLVE", "Y_SOLVE")
        assert "X_SOLVE" in m.counters and "Y_SOLVE" in m.counters

    def test_empty_chain_rejected(self, runner):
        with pytest.raises(MeasurementError):
            runner.measure(())

    def test_unknown_kernel_rejected(self, runner):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            runner.measure(("NOPE",))

    def test_measure_all_isolated(self, runner, bench):
        out = runner.measure_all_isolated(bench.loop_kernel_names)
        assert set(out) == set(bench.loop_kernel_names)

    def test_measure_windows(self, runner, bench):
        from repro.core import ControlFlow

        flow = ControlFlow(bench.loop_kernel_names)
        out = runner.measure_windows(flow.windows(2))
        assert len(out) == 5


class TestProtocolSemantics:
    def test_chain_time_below_isolated_sum(self, runner):
        """On this machine the solve pair is constructively coupled."""
        x = runner.measure(("X_SOLVE",)).mean
        y = runner.measure(("Y_SOLVE",)).mean
        xy = runner.measure(("X_SOLVE", "Y_SOLVE")).mean
        assert xy < x + y

    def test_replay_context_collapses_couplings(self, bench, machine_config):
        """Ablation: symmetric in-app context on both isolated and chain
        measurements makes C ~ 1 (no observable coupling)."""
        cfg = MeasurementConfig(
            repetitions=3,
            warmup=1,
            isolated_context="replay",
            chain_context="replay",
        )
        runner = ChainRunner(bench, machine_config, cfg)
        x = runner.measure(("X_SOLVE",)).mean
        y = runner.measure(("Y_SOLVE",)).mean
        xy = runner.measure(("X_SOLVE", "Y_SOLVE")).mean
        assert xy / (x + y) == pytest.approx(1.0, abs=0.06)

    def test_flush_colder_than_replay(self, bench, machine_config):
        flush = ChainRunner(
            bench,
            machine_config,
            MeasurementConfig(repetitions=3, isolated_context="flush"),
        ).measure(("X_SOLVE",)).mean
        replay = ChainRunner(
            bench,
            machine_config,
            MeasurementConfig(repetitions=3, isolated_context="replay"),
        ).measure(("X_SOLVE",)).mean
        assert flush >= replay

    def test_context_kernels_are_flow_complement(self, runner):
        ctx = runner._context_kernels(("X_SOLVE", "Y_SOLVE"))
        assert ctx == ["Z_SOLVE", "ADD", "COPY_FACES"]
        ctx = runner._context_kernels(("ADD", "COPY_FACES"))
        assert ctx == ["X_SOLVE", "Y_SOLVE", "Z_SOLVE"]

    def test_context_for_pre_kernel_is_empty(self, runner):
        assert runner._context_kernels(("INITIALIZATION",)) == []

    def test_context_for_post_kernel_is_whole_loop(self, runner, bench):
        assert runner._context_kernels(("FINAL",)) == list(
            bench.loop_kernel_names
        )

    def test_non_window_chain_rejected(self, runner):
        with pytest.raises(MeasurementError, match="contiguous window"):
            runner._context_kernels(("X_SOLVE", "ADD"))


class TestApplicationRunner:
    def test_full_run_class_s(self, bench, machine_config):
        result = ApplicationRunner(bench, machine_config).run()
        assert not result.extrapolated  # 60 iterations -> full run
        assert result.total_time == pytest.approx(
            result.pre_time + result.loop_time + result.post_time
        )
        assert result.iterations == 60

    def test_extrapolated_run(self, machine_config):
        bench = make_benchmark("BT", "W", 4)
        runner = ApplicationRunner(
            bench, machine_config, warmup_iterations=1, measured_iterations=3
        )
        result = runner.run()
        assert result.extrapolated
        assert result.measured_iterations == 4
        assert result.iterations == 200
        assert result.per_iteration > 0

    def test_forced_full_run(self, machine_config):
        bench = make_benchmark("BT", "S", 4)
        result = ApplicationRunner(bench, machine_config).run(extrapolate=False)
        assert not result.extrapolated

    def test_counters_present(self, bench, machine_config):
        result = ApplicationRunner(bench, machine_config).run()
        assert "X_SOLVE" in result.counters
        assert result.counters["X_SOLVE"].flops > 0

    def test_extrapolation_never_exceeds_iterations(self, machine_config):
        bench = make_benchmark("BT", "S", 4)  # 60 iterations
        runner = ApplicationRunner(
            bench, machine_config, warmup_iterations=50, measured_iterations=50
        )
        result = runner.run(extrapolate=True)
        # 100 simulated > 60 total: falls back to a full run.
        assert not result.extrapolated
