"""Measurement campaigns with database memoization."""

import pytest

from repro.errors import MeasurementError
from repro.instrument import (
    Campaign,
    CampaignPlan,
    MeasurementConfig,
    PerformanceDatabase,
)
from repro.simmachine import ibm_sp_argonne


@pytest.fixture
def plan():
    return CampaignPlan(
        benchmark="BT",
        problem_classes=("S",),
        proc_counts=(1, 4),
        chain_lengths=(2,),
    )


@pytest.fixture
def campaign(plan):
    return Campaign(
        plan=plan,
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(repetitions=2, warmup=1),
    )


class TestPlan:
    def test_configurations_grid(self, plan):
        assert plan.configurations() == [("S", 1), ("S", 4)]

    def test_validation(self):
        with pytest.raises(MeasurementError):
            CampaignPlan("BT", (), (4,))
        with pytest.raises(MeasurementError):
            CampaignPlan("BT", ("S",), (4,), chain_lengths=(1,))


class TestExecution:
    def test_run_covers_all_cells(self, campaign):
        results = campaign.run()
        assert set(results) == {("S", 1), ("S", 4)}
        for inputs in results.values():
            assert len(inputs.loop_times) == 5
            assert len(inputs.chain_times) == 5  # pairs
            assert inputs.pre_times and inputs.post_times

    def test_measurements_counted(self, campaign):
        campaign.run()
        # 5 isolated + 2 one-shots + 5 pairs per cell, 2 cells.
        assert campaign.measurements_run == 24
        assert campaign.measurements_reused == 0

    def test_rerun_is_fully_memoized(self, campaign):
        campaign.run()
        ran_first = campaign.measurements_run
        campaign.run()
        assert campaign.measurements_run == ran_first
        assert campaign.measurements_reused == ran_first

    def test_resume_from_persistent_database(self, plan, tmp_path):
        path = str(tmp_path / "campaign.sqlite")
        measurement = MeasurementConfig(repetitions=2, warmup=1)
        first = Campaign(
            plan=plan,
            machine=ibm_sp_argonne(),
            measurement=measurement,
            database=PerformanceDatabase(path),
        )
        first.run()
        first.database.close()
        resumed = Campaign(
            plan=plan,
            machine=ibm_sp_argonne(),
            measurement=measurement,
            database=PerformanceDatabase(path),
        )
        resumed.run()
        assert resumed.measurements_run == 0
        assert resumed.measurements_reused == 24
        resumed.database.close()

    def test_inputs_feed_predictors(self, campaign):
        from repro.core import CouplingPredictor, SummationPredictor

        inputs = campaign.run_configuration("S", 4)
        assert SummationPredictor().predict(inputs) > 0
        assert CouplingPredictor(2).predict(inputs) > 0


class TestResumability:
    def test_warm_rerun_measures_nothing(self, plan, monkeypatch):
        """A second run() on a warm database must not touch the simulator.

        The measurements_run counter already claims this; the spy on
        ChainRunner.measure proves it at the source.
        """
        from repro.instrument.runner import ChainRunner

        calls = []
        real_measure = ChainRunner.measure

        def spy(self, kernels):
            calls.append(tuple(kernels))
            return real_measure(self, kernels)

        monkeypatch.setattr(ChainRunner, "measure", spy)
        campaign = Campaign(
            plan=plan,
            machine=ibm_sp_argonne(),
            measurement=MeasurementConfig(repetitions=2, warmup=1),
        )
        campaign.run()
        cold_calls = len(calls)
        assert cold_calls == 24
        campaign.run()
        assert len(calls) == cold_calls  # zero new measurements


class TestForCell:
    def test_single_cell_plan(self):
        plan = CampaignPlan.for_cell("BT", "S", 4, chain_lengths=(3, 2, 3))
        assert plan.configurations() == [("S", 4)]
        assert plan.chain_lengths == (2, 3)  # sorted, deduplicated

    def test_cell_runs_like_a_one_cell_campaign(self):
        campaign = Campaign(
            plan=CampaignPlan.for_cell("BT", "S", 4),
            machine=ibm_sp_argonne(),
            measurement=MeasurementConfig(repetitions=2, warmup=1),
        )
        results = campaign.run()
        assert set(results) == {("S", 4)}
        assert campaign.measurements_run == 12
