"""Text timeline rendering from traces."""

import pytest

from repro.errors import MeasurementError
from repro.instrument import render_timeline
from repro.npb import make_benchmark
from repro.simmachine import Machine, ibm_sp_argonne
from repro.simmpi import attach_world


@pytest.fixture(scope="module")
def traced_run():
    bench = make_benchmark("BT", "S", 4)
    machine = Machine(
        ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0),
        4,
        trace=True,
    )
    attach_world(machine)

    def program(ctx):
        for kernel in bench.loop_kernel_names:
            yield from bench.kernel(kernel)(ctx)

    machine.run(program)
    return machine


class TestRenderTimeline:
    def test_one_row_per_rank(self, traced_run):
        text = render_timeline(traced_run.trace, 4, width=40)
        rows = [line for line in text.splitlines() if line.startswith("rank")]
        assert len(rows) == 4

    def test_rows_have_requested_width(self, traced_run):
        text = render_timeline(traced_run.trace, 4, width=40, legend=False)
        for line in text.splitlines():
            assert len(line.split("|")[1]) == 40

    def test_kernel_initials_appear_in_order(self, traced_run):
        text = render_timeline(traced_run.trace, 4, width=60, legend=False)
        row = text.splitlines()[0].split("|")[1]
        # COPY_FACES then X/Y/Z solves then ADD: C before X before A.
        assert row.index("C") < row.index("X")
        compact = [c for i, c in enumerate(row) if i == 0 or c != row[i - 1]]
        assert compact[0] == "C"

    def test_legend_lists_labels(self, traced_run):
        text = render_timeline(traced_run.trace, 4, width=40)
        assert "legend:" in text
        assert "C=COPY_FACES" in text

    def test_untraced_run_rejected(self):
        from repro.simmachine.trace import Trace

        with pytest.raises(MeasurementError, match="no phase records"):
            render_timeline(Trace(), 2)

    def test_width_validated(self, traced_run):
        with pytest.raises(MeasurementError):
            render_timeline(traced_run.trace, 4, width=5)
