"""Command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "table3b", "--seed", "5"])
        assert args.experiment == "table3b"
        assert args.seed == 5

    def test_predict_arguments(self):
        args = build_parser().parse_args(["predict", "BT", "W", "9", "-L", "4"])
        assert args.chain_length == 4
        assert args.nprocs == 9

    def test_lowercase_arguments_normalize(self):
        args = build_parser().parse_args(["predict", "bt", "w", "9"])
        assert args.benchmark == "BT"
        assert args.problem_class == "W"
        args = build_parser().parse_args(["profile", "lu", "a", "8"])
        assert args.benchmark == "LU"
        assert args.problem_class == "A"
        args = build_parser().parse_args(["sweep", "cg", "--classes", "s,w"])
        assert args.benchmark == "CG"

    def test_mixed_case_rejected_only_when_invalid(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "xx", "S", "4"])
        err = capsys.readouterr().err
        # The error message offers canonical uppercase choices, no dupes.
        assert err.count("'BT'") == 1


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table2b", "table6a", "table8c", "scaling"):
            assert exp_id in out

    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "ibm-sp-argonne" in out
        assert "120 MHz" in out

    def test_predict(self, capsys):
        assert main(["predict", "BT", "S", "4", "-L", "2"]) == 0
        out = capsys.readouterr().out
        assert "Actual:" in out
        assert "Summation:" in out
        assert "Best predictor:" in out

    def test_run_dataset_table(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "12 x 12 x 12" in out
        assert "paper note" in out

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "table99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_small_table_with_low_repetitions(self, capsys):
        assert main(["run", "table2b", "--repetitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "Coupling: 2 kernels" in out
        assert "Actual" in out

    def test_profile(self, capsys):
        assert main(["profile", "BT", "S", "4"]) == 0
        out = capsys.readouterr().out
        assert "X_SOLVE" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestSweepCommand:
    def test_sweep_prints_predictions(self, capsys, tmp_path):
        db = str(tmp_path / "sweep.sqlite")
        assert main(
            [
                "sweep", "BT",
                "--classes", "S",
                "--procs", "1,4",
                "--repetitions", "2",
                "--db", db,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "summation" in out and "coupling L=2" in out
        assert "24 run, 0 reused" in out

    def test_sweep_memoizes_across_invocations(self, capsys, tmp_path):
        db = str(tmp_path / "sweep.sqlite")
        args = [
            "sweep", "BT", "--classes", "S", "--procs", "4",
            "--repetitions", "2", "--db", db,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "0 run, 12 reused" in capsys.readouterr().out


class TestServeCommand:
    def test_jsonl_session_over_stdin(self, capsys, monkeypatch):
        requests = "\n".join(
            [
                '{"benchmark": "bt", "problem_class": "s", "nprocs": 4}',
                '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}',
                '{"cmd": "stats"}',
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(requests))
        assert main(
            ["serve", "--repetitions", "2", "--executor", "inline",
             "--batch-window", "0"]
        ) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert len(responses) == 3
        assert all(r["ok"] for r in responses)
        assert responses[0]["request"]["benchmark"] == "BT"  # normalized
        assert responses[2]["stats"]["l1_hits"] == 1  # repeat hit the cache
        # Shutdown logs structured lines and prints the stats snapshot.
        assert "serve.closed requests=2" in captured.err
        assert '"requests"' in captured.err

    def test_serve_persists_measurements(self, capsys, monkeypatch, tmp_path):
        db = str(tmp_path / "serve.sqlite")
        line = '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}\n'
        monkeypatch.setattr("sys.stdin", io.StringIO(line))
        assert main(
            ["serve", "--db", db, "--repetitions", "2",
             "--executor", "inline", "--batch-window", "0"]
        ) == 0
        capsys.readouterr()
        from repro.instrument import PerformanceDatabase

        with PerformanceDatabase(db) as stored:
            assert len(stored) == 13  # 12 chain rows + the application total


class TestReportCommand:
    def test_report_writes_markdown(self, capsys, tmp_path, monkeypatch):
        # Restrict to the cheap dataset tables via the generator directly;
        # the CLI path is exercised with a tiny repetition count.
        from repro.experiments import ExperimentPipeline, ExperimentSettings
        from repro.experiments.reportgen import generate_markdown
        from repro.instrument import MeasurementConfig

        text = generate_markdown(
            ExperimentPipeline(
                ExperimentSettings(
                    measurement=MeasurementConfig(repetitions=2, warmup=1)
                )
            ),
            experiment_ids=["table1", "table5", "table7"],
        )
        assert text.startswith("# EXPERIMENTS")
        assert "## table1" in text and "## table7" in text
        assert "12 x 12 x 12" in text


class TestTraceCommand:
    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "timeline.json"
        assert main(["trace", "BT", "S", "4", "-o", str(out_path)]) == 0
        assert "wrote" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        validate_chrome_trace(document)
        events = document["traceEvents"]
        # Simulator rank activity (pid 2) and pipeline spans (pid 1).
        assert any(e["pid"] == 2 and e["ph"] == "X" for e in events)
        assert any(
            e["pid"] == 1 and e.get("name") == "app.run" for e in events
        )
        sim_ranks = {e["tid"] for e in events if e["pid"] == 2 and e["ph"] != "M"}
        assert sim_ranks == {0, 1, 2, 3}

    def test_trace_ring_buffer_bound(self, capsys, tmp_path):
        out_path = tmp_path / "timeline.json"
        assert main(
            ["trace", "BT", "S", "4", "-o", str(out_path), "--max-records", "50"]
        ) == 0
        document = json.loads(out_path.read_text())
        sim_events = [
            e for e in document["traceEvents"]
            if e["pid"] == 2 and e["ph"] != "M"
        ]
        assert 0 < len(sim_events) <= 50


class TestMetricsCommand:
    def test_metrics_against_a_live_server(self, capsys):
        import threading

        from repro.instrument import MeasurementConfig
        from repro.service import PredictionService, serve_socket

        service = PredictionService(
            measurement=MeasurementConfig(repetitions=2, warmup=1),
            executor="inline",
            batch_window=0.0,
        )
        ready = threading.Event()
        bound: list = []
        control: list = []
        thread = threading.Thread(
            target=serve_socket,
            args=(service,),
            kwargs={"ready": ready, "bound": bound, "control": control},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        port = str(bound[0][1])
        try:
            assert main(["metrics", "--port", port]) == 0
            prometheus = capsys.readouterr().out
            assert "# TYPE service_requests_total counter" in prometheus
            assert main(["metrics", "--port", port, "--format", "json"]) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert "service.requests" in snapshot
        finally:
            control[0].shutdown()
            thread.join(timeout=10)
            service.close()

    def test_metrics_unreachable_server_fails_cleanly(self, capsys):
        assert main(["metrics", "--port", "1", "--timeout", "0.5"]) == 1
        assert "error:" in capsys.readouterr().err


class TestProfileRunCommand:
    def test_profile_run_writes_profile_and_exports(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace
        from repro.obs.profile import ProfileData

        out = tmp_path / "PROFILE.json"
        flame = tmp_path / "profile.folded"
        chrome = tmp_path / "profile-trace.json"
        assert main([
            "profile", "run", "BT", "S", "4",
            "--repetitions", "2", "--interval", "0.002",
            "-o", str(out), "--flamegraph", str(flame),
            "--chrome", str(chrome),
        ]) == 0
        printed = capsys.readouterr().out
        assert "profiled BT/S/4" in printed
        data = ProfileData.from_dict(json.loads(out.read_text()))
        assert sum(data.samples.values()) > 0
        # Collapsed lines are "frame;frame;... count".
        lines = flame.read_text().strip().splitlines()
        assert lines and all(
            line.rsplit(" ", 1)[1].isdigit() for line in lines
        )
        validate_chrome_trace(json.loads(chrome.read_text()))

    def test_profile_report_reads_saved_profile(self, capsys, tmp_path):
        from repro.obs.profile import ProfileData

        data = ProfileData(0.01)
        data.record(("app:main", "app:solve"), ("sim.run:x",), 0.0, 1)
        data.record(("app:main",), (), 0.01, 1)
        data.duration = 0.02
        saved = tmp_path / "saved.json"
        saved.write_text(json.dumps(data.to_dict()))
        assert main(["profile", "report", "--in", str(saved)]) == 0
        printed = capsys.readouterr().out
        assert "app:solve" in printed
        assert "sim.run:x" in printed

    def test_profile_report_without_input_fails(self, capsys):
        assert main(["profile", "report"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_legacy_profile_rejects_bad_triple(self, capsys):
        assert main(["profile", "XX", "S", "4"]) == 1
        assert "error:" in capsys.readouterr().err


class TestTraceCollapsedFormat:
    def test_trace_collapsed_writes_span_stacks(self, capsys, tmp_path):
        out_path = tmp_path / "spans.folded"
        assert main([
            "trace", "BT", "S", "4", "-o", str(out_path),
            "--format", "collapsed",
        ]) == 0
        lines = out_path.read_text().strip().splitlines()
        assert lines
        # Self-time-weighted span paths, e.g. "app.run;chain.measure 1234".
        assert any("app.run" in line for line in lines)
        for line in lines:
            path, weight = line.rsplit(" ", 1)
            assert path and weight.isdigit()


class TestBenchCommand:
    @staticmethod
    def _seed_ledger(path, values, series="engine"):
        import time as _time

        from repro.obs.ledger import PerfLedger, make_entry

        ledger = PerfLedger(path)
        for index, value in enumerate(values):
            ledger.append(make_entry(
                series,
                {"events_per_sec": {
                    "value": value, "unit": "ev/s", "direction": "higher",
                }},
                timestamp=1_000_000.0 + index,
                commit=f"c{index}",
            ))
        return ledger

    def test_check_passes_on_stable_history(self, capsys, tmp_path):
        path = tmp_path / "PERF_LEDGER.json"
        self._seed_ledger(path, [100.0, 101.0, 99.0, 100.5])
        assert main(["bench", "check", "--ledger", str(path)]) == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_check_fails_on_injected_regression(self, capsys, tmp_path):
        path = tmp_path / "PERF_LEDGER.json"
        self._seed_ledger(path, [100.0, 101.0, 99.0, 100.5, 55.0])
        assert main(["bench", "check", "--ledger", str(path)]) == 1
        printed = capsys.readouterr().out
        assert "REGRESSION" in printed
        assert "events_per_sec" in printed

    def test_check_cold_history_warns_by_default(self, capsys, tmp_path):
        path = tmp_path / "PERF_LEDGER.json"
        self._seed_ledger(path, [100.0])
        assert main(["bench", "check", "--ledger", str(path)]) == 0
        assert "cold" in capsys.readouterr().out
        assert main([
            "bench", "check", "--ledger", str(path), "--strict-cold",
        ]) == 1

    def test_show_renders_series(self, capsys, tmp_path):
        path = tmp_path / "PERF_LEDGER.json"
        self._seed_ledger(path, [100.0, 101.0])
        assert main([
            "bench", "show", "--ledger", str(path), "--series", "engine",
        ]) == 0
        assert "events_per_sec" in capsys.readouterr().out

    def test_migrate_then_check_on_real_artifacts(self, capsys, tmp_path):
        import shutil
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        legacy = repo_root / "BENCH_engine.json"
        if not legacy.exists():
            pytest.skip("no BENCH_engine.json artifact in this checkout")
        shutil.copy(legacy, tmp_path / "BENCH_engine.json")
        path = tmp_path / "PERF_LEDGER.json"
        assert main([
            "bench", "migrate", "--ledger", str(path),
            "--root", str(tmp_path),
        ]) == 0
        assert main(["bench", "check", "--ledger", str(path)]) == 0
        assert "cold" in capsys.readouterr().out


class TestSloCommand:
    def test_slo_against_a_live_server(self, capsys):
        import threading

        from repro.instrument import MeasurementConfig
        from repro.service import PredictionService, serve_socket

        service = PredictionService(
            measurement=MeasurementConfig(repetitions=2, warmup=1),
            executor="inline",
            batch_window=0.0,
        )
        ready = threading.Event()
        bound: list = []
        control: list = []
        thread = threading.Thread(
            target=serve_socket,
            args=(service,),
            kwargs={"ready": ready, "bound": bound, "control": control},
            daemon=True,
        )
        thread.start()
        assert ready.wait(timeout=10)
        port = str(bound[0][1])
        try:
            assert main(["slo", "--port", port]) == 0
            text = capsys.readouterr().out
            assert "latency.overall" in text
            assert "breaches:" in text
            assert main(["slo", "--port", port, "--format", "json"]) == 0
            report = json.loads(capsys.readouterr().out)
            assert report["breaches"] == 0
            assert "objectives" in report
        finally:
            control[0].shutdown()
            thread.join(timeout=10)
            service.close()

    def test_slo_unreachable_server_fails_cleanly(self, capsys):
        assert main(["slo", "--port", "1", "--timeout", "0.5"]) == 1
        assert "error:" in capsys.readouterr().err
