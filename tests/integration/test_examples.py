"""Every example script must run cleanly end-to-end.

Examples are the adoption surface; this smoke suite keeps them from
rotting. Each script is executed in-process (import + ``main()``) so test
coverage includes them and failures give real tracebacks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXPECTED = {
    "quickstart.py",
    "bt_class_w_tables.py",
    "coupling_scaling_study.py",
    "custom_application.py",
    "lu_latency_sensitivity.py",
    "coupling_reuse.py",
    "host_couplings.py",
    "measurement_campaign.py",
    "service_load_test.py",
    "observability_demo.py",
    "profiling_demo.py",
}


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_example_inventory_is_current():
    found = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert found == EXPECTED, (
        "examples changed on disk; update EXPECTED (and the README table)"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script, capsys):
    module = load_module(EXAMPLES_DIR / script)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} printed nothing"
