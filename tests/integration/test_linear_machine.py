"""On an interaction-free machine the whole methodology must be exact.

The linear test machine has no contention, no noise, and an effectively
infinite cache, so kernels cannot interact: ``P_ij = P_i + P_j`` must hold,
every coupling must be 1, and both predictors must agree with the actual
execution time. These tests pin the algebra to its analytic fixed point.
"""

import pytest

from repro.core import ControlFlow, CouplingPredictor, PredictionInputs, SummationPredictor
from repro.instrument import ApplicationRunner, ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import linear_test_machine


@pytest.fixture(scope="module")
def setup():
    config = linear_test_machine()
    bench = make_benchmark("BT", "S", 4)
    runner = ChainRunner(
        bench,
        config,
        MeasurementConfig(repetitions=2, warmup=1, isolated_context="none",
                          chain_context="none"),
    )
    return config, bench, runner


class TestNoInteraction:
    def test_pair_time_is_sum_of_isolated(self, setup):
        _, bench, runner = setup
        x = runner.measure(("X_SOLVE",)).mean
        y = runner.measure(("Y_SOLVE",)).mean
        xy = runner.measure(("X_SOLVE", "Y_SOLVE")).mean
        assert xy == pytest.approx(x + y, rel=1e-6)

    def test_all_pair_couplings_are_one(self, setup):
        _, bench, runner = setup
        flow = ControlFlow(bench.loop_kernel_names)
        isolated = {
            k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
        }
        for window in flow.windows(2):
            chain = runner.measure(window).mean
            coupling = chain / sum(isolated[k] for k in window)
            assert coupling == pytest.approx(1.0, rel=1e-6)

    def test_chain_of_all_kernels_is_sum(self, setup):
        _, bench, runner = setup
        flow = ControlFlow(bench.loop_kernel_names)
        isolated = {
            k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
        }
        full = runner.measure(flow.names).mean
        assert full == pytest.approx(sum(isolated.values()), rel=1e-6)


class TestPredictionsExact:
    def test_summation_matches_actual(self, setup):
        config, bench, runner = setup
        flow = ControlFlow(bench.loop_kernel_names)
        isolated = {
            k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
        }
        pre = {k: runner.measure((k,)).mean for k in bench.pre_kernel_names}
        post = {k: runner.measure((k,)).mean for k in bench.post_kernel_names}
        inputs = PredictionInputs(
            flow=flow,
            iterations=bench.iterations,
            loop_times=isolated,
            pre_times=pre,
            post_times=post,
        )
        actual = ApplicationRunner(bench, config).run().total_time
        predicted = SummationPredictor().predict(inputs)
        assert predicted == pytest.approx(actual, rel=0.01)

    def test_coupling_equals_summation(self, setup):
        config, bench, runner = setup
        flow = ControlFlow(bench.loop_kernel_names)
        isolated = {
            k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()
        }
        chains = {w: runner.measure(w).mean for w in flow.windows(2)}
        inputs = PredictionInputs(
            flow=flow,
            iterations=bench.iterations,
            loop_times=isolated,
            chain_times=chains,
        )
        assert CouplingPredictor(2).predict(inputs) == pytest.approx(
            SummationPredictor().predict(inputs), rel=1e-6
        )
