"""End-to-end reproduction properties on the simulated IBM SP.

These are the headline assertions: the coupling predictor beats summation
the way the paper reports, the extrapolated application runner agrees with
full runs, and everything is deterministic for a fixed seed.
"""

import pytest

from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import ApplicationRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.simmachine import ibm_sp_argonne


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(
        ExperimentSettings(
            measurement=MeasurementConfig(repetitions=4, warmup=2, seed=0)
        )
    )


class TestCouplingBeatsSummation:
    """The paper's core result, on small configurations of each code."""

    @pytest.mark.parametrize(
        "name,cls,procs,length",
        [
            ("BT", "S", 4, 2),
            ("BT", "W", 4, 3),
            ("SP", "W", 4, 4),
            ("LU", "W", 4, 3),
        ],
    )
    def test_coupling_more_accurate(self, pipeline, name, cls, procs, length):
        result = pipeline.config_result(name, cls, procs, (length,))
        summ_err = abs(result.summation - result.actual) / result.actual
        coup_err = abs(
            result.coupling_prediction(length) - result.actual
        ) / result.actual
        assert coup_err < summ_err
        assert coup_err < 0.05  # within a few percent, as in the paper

    def test_summation_overestimates_constructive_workload(self, pipeline):
        """Constructive coupling => actual < summation (§4.1.2)."""
        result = pipeline.config_result("BT", "W", 4, (3,))
        assert result.summation > result.actual

    def test_bt_w_couplings_constructive(self, pipeline):
        result = pipeline.config_result("BT", "W", 4, (3,))
        values = result.coupling_values(3)
        assert all(v < 1.0 for v in values.values())


class TestExtrapolationEquivalence:
    def test_extrapolated_total_close_to_full_run(self):
        """The experiment drivers' extrapolation must track full runs."""
        config = ibm_sp_argonne()
        bench = make_benchmark("BT", "S", 4)  # 60 iterations: cheap full run
        full = ApplicationRunner(bench, config, seed=7).run(extrapolate=False)
        extra = ApplicationRunner(
            bench, config, seed=7, warmup_iterations=2, measured_iterations=6
        ).run(extrapolate=True)
        assert extra.extrapolated
        assert extra.total_time == pytest.approx(full.total_time, rel=0.05)


class TestDeterminism:
    def test_pipeline_reproducible(self):
        settings = ExperimentSettings(
            measurement=MeasurementConfig(repetitions=3, warmup=1, seed=11)
        )
        r1 = ExperimentPipeline(settings).config_result("BT", "S", 4, (2,))
        r2 = ExperimentPipeline(settings).config_result("BT", "S", 4, (2,))
        assert r1.actual == r2.actual
        assert r1.summation == r2.summation
        assert r1.coupling_prediction(2) == r2.coupling_prediction(2)

    def test_seed_changes_measurements(self):
        base = MeasurementConfig(repetitions=3, warmup=1, seed=1)
        other = MeasurementConfig(repetitions=3, warmup=1, seed=2)
        r1 = ExperimentPipeline(
            ExperimentSettings(measurement=base)
        ).config_result("BT", "S", 4)
        r2 = ExperimentPipeline(
            ExperimentSettings(measurement=other)
        ).config_result("BT", "S", 4)
        assert r1.inputs.loop_times != r2.inputs.loop_times


class TestPipelineCaching:
    def test_chain_measurements_accumulate(self, pipeline):
        r2 = pipeline.config_result("BT", "S", 4, (2,))
        count_after_pairs = len(r2.inputs.chain_times)
        r3 = pipeline.config_result("BT", "S", 4, (2, 3))
        assert len(r3.inputs.chain_times) == count_after_pairs + 5
        # Pair measurements were reused, not remeasured (same object state).
        for window in r2.flow.windows(2):
            assert r3.inputs.chain_times[window] == r2.inputs.chain_times[window]

    def test_invalid_chain_length_rejected(self, pipeline):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            pipeline.config_result("BT", "S", 4, (9,))


class TestScalingRegimes:
    """Coupling-value regimes across classes (paper §4.1.x observations)."""

    def test_class_a_couplings_decrease_with_procs(self, pipeline):
        few = pipeline.config_result("BT", "A", 4, (4,))
        many = pipeline.config_result("BT", "A", 25, (4,))
        avg_few = sum(few.coupling_values(4).values()) / 5
        avg_many = sum(many.coupling_values(4).values()) / 5
        assert avg_many < avg_few

    def test_class_w_couplings_stable_with_procs(self, pipeline):
        a = pipeline.config_result("BT", "W", 4, (3,))
        b = pipeline.config_result("BT", "W", 16, (3,))
        for window in a.flow.windows(3):
            va = a.coupling_values(3)[window]
            vb = b.coupling_values(3)[window]
            assert abs(va - vb) / va < 0.12  # "changes very little"
