"""Integration battery for ``repro serve --shards N``.

The acceptance bar for the sharded tier: a shard count is a deployment
knob, not a semantics knob. The same campaign request set answered by
``--shards 1`` and ``--shards 4`` must be *bit-identical* — consistent
hashing only changes which process simulates a cell, and REP001
determinism makes every process simulate it identically.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.instrument import MeasurementConfig
from repro.service import (
    LineClient,
    ProcessShardManager,
    RetryPolicy,
    ShardedServer,
    make_shard_configs,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def campaign_requests():
    """A small full-factorial campaign: 2 benchmarks x 2 sizes x 2 chains."""
    lines = []
    for benchmark in ("BT", "SP"):
        for nprocs in (1, 4):
            for chain_length in (2, 3):
                lines.append(
                    json.dumps(
                        {
                            "id": f"{benchmark}-{nprocs}-{chain_length}",
                            "benchmark": benchmark,
                            "problem_class": "S",
                            "nprocs": nprocs,
                            "chain_length": chain_length,
                        }
                    )
                )
    return lines


def _serve_stdin(shard_count: int, lines: list[str]) -> list[str]:
    """Run the real CLI in stdin mode and return its response lines."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--repetitions",
            "2",
            "--shards",
            str(shard_count),
        ],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    responses = [line for line in proc.stdout.splitlines() if line.strip()]
    assert len(responses) == len(lines), proc.stderr[-2000:]
    return responses


def test_shard_count_is_invisible_bit_identical():
    """--shards 1 and --shards 4 serve byte-for-byte the same answers."""
    lines = campaign_requests()
    single = _serve_stdin(1, lines)
    sharded = _serve_stdin(4, lines)
    assert single == sharded
    for raw in sharded:
        payload = json.loads(raw)
        assert payload["ok"], payload
        assert payload["best"]
        assert payload["tier"] == "simulation"


def test_admission_pressure_recovers_via_client_retry():
    """Saturating one real shard sheds typed errors that retries absorb."""
    configs = make_shard_configs(
        1,
        measurement=MeasurementConfig(repetitions=2, warmup=1, seed=0),
        max_workers=1,
        queue_depth=4,
    )
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(
            manager, admission_limit=1, conns_per_shard=1, replication=1
        )
        host, port = server.start()
        responses = {}
        lock = threading.Lock()

        def client(seed):
            with LineClient(
                host,
                port,
                retry=RetryPolicy(max_attempts=20, base_delay=0.05),
            ) as c:
                response = c.predict(
                    {
                        "benchmark": "BT",
                        "problem_class": "S",
                        "nprocs": 4,
                        "chain_length": 2,
                        "seed": seed,
                    }
                )
            with lock:
                responses[seed] = response

        threads = [
            threading.Thread(target=client, args=(seed,), daemon=True)
            for seed in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "client deadlock"
        assert sorted(responses) == [0, 1, 2, 3]
        assert all(r["ok"] for r in responses.values())
        front = server.handle('{"cmd": "stats"}', timeout=30.0)
        stats = json.loads(front)["stats"]["frontend"]
        assert stats["shed"] >= 1, "admission control never engaged"
        server.stop()


def test_sharded_persistence_is_shared_nothing(tmp_path):
    """Each shard owns a private db + memo slice; none collide."""
    db = str(tmp_path / "perf.sqlite")
    cache = str(tmp_path / "memo")
    configs = make_shard_configs(
        3,
        db_path=db,
        cache_dir=cache,
        measurement=MeasurementConfig(repetitions=2, warmup=1, seed=0),
        max_workers=2,
    )
    paths = [(c.db_path, c.cache_dir) for c in configs]
    assert len({p for p, _ in paths}) == 3
    assert len({c for _, c in paths}) == 3
    with ProcessShardManager(configs) as manager:
        server = ShardedServer(manager)
        host, port = server.start()
        with LineClient(host, port) as client:
            for nprocs in (1, 4, 9):
                assert client.predict(
                    {
                        "benchmark": "BT",
                        "problem_class": "S",
                        "nprocs": nprocs,
                        "chain_length": 2,
                    }
                )["ok"]
        server.stop()
    # every shard that served a cell persisted into its own slice
    populated = [path for path, _ in paths if os.path.exists(path)]
    assert populated, "no shard persisted anything"


@pytest.mark.parametrize("bad", ['{"cmd": "unknown"}', "{broken"])
def test_sharded_stdin_mode_reports_typed_errors(bad):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--shards", "2"],
        input=bad + "\n",
        capture_output=True,
        text=True,
        timeout=180,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0
    payload = json.loads(proc.stdout.splitlines()[0])
    assert payload["ok"] is False
    assert payload["error_type"]
