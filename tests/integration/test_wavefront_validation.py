"""Engine vs closed-form wavefront schedule.

Two completely independent implementations of the LU sweep's timing — the
discrete-event engine executing the kernel, and a dynamic program over
(rank, plane) completion times — must agree exactly on a deterministic,
contention-free machine. This pins down the engine's message timing,
blocking-send semantics and NIC serialization in one shot.
"""

import pytest

from repro.npb import make_benchmark
from repro.simmachine import Machine, ibm_sp_argonne
from repro.simmachine.wavefront import analytic_sweep_makespan
from repro.simmpi import attach_world
from repro.errors import ConfigurationError


def quiet_machine_config():
    base = ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)
    return base.with_(
        network=base.network.__class__(
            **{**base.network.__dict__, "contention_coeff": 0.0, "drain_window": 0.0}
        )
    )


def engine_sweep_time(bench, config, kernel):
    machine = Machine(config, bench.nprocs, seed=0)
    attach_world(machine)

    def program(ctx):
        yield from bench.kernel(kernel)(ctx)

    return machine.run(program)


@pytest.mark.parametrize(
    "cls,procs",
    [("S", 2), ("S", 4), ("W", 4), ("W", 8), ("A", 16)],
)
@pytest.mark.parametrize("kernel,lower", [("SSOR_LT", True), ("SSOR_UT", False)])
def test_engine_matches_analytic_schedule(cls, procs, kernel, lower):
    config = quiet_machine_config()
    bench = make_benchmark("LU", cls, procs)
    engine = engine_sweep_time(bench, config, kernel)
    analytic = analytic_sweep_makespan(bench, config, lower=lower)
    assert engine == pytest.approx(analytic, rel=1e-9)


def test_single_rank_is_pure_compute_plus_memory():
    """With one rank there is no communication at all."""
    config = quiet_machine_config()
    bench = make_benchmark("LU", "S", 1)
    engine = engine_sweep_time(bench, config, "SSOR_LT")
    analytic = analytic_sweep_makespan(bench, config, lower=True)
    assert engine == pytest.approx(analytic, rel=1e-9)


def test_analytic_requires_deterministic_machine():
    bench = make_benchmark("LU", "S", 4)
    with pytest.raises(ConfigurationError, match="noiseless"):
        analytic_sweep_makespan(bench, ibm_sp_argonne())


def test_analytic_requires_zero_contention():
    bench = make_benchmark("LU", "S", 4)
    config = ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)
    with pytest.raises(ConfigurationError, match="contention"):
        analytic_sweep_makespan(bench, config)
