"""Property-based tests pinning the coupling algebra's model invariants.

The four contracted properties (hypothesis, derandomized so tier-1 runs
are reproducible):

1. coupling values are strictly positive for any positive measurements;
2. ``C_ij == 1`` exactly when ``P_ij == P_i + P_j`` (Eq. 1's neutral
   point);
3. every kernel coefficient is a convex weighted average of the coupling
   values of the windows containing that kernel (the §3 formula);
4. the coupling predictor reduces to the summation baseline whenever all
   couplings equal 1.

Plus supporting invariants: monotonicity in the chain measurements and
the destructive/constructive ordering against the baseline.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coefficients import kernel_coefficients
from repro.core.coupling import CouplingSet, coupling_value
from repro.core.kernel import ControlFlow
from repro.core.predictor import (
    CouplingPredictor,
    PredictionInputs,
    SummationPredictor,
)
from repro.util.stats import weighted_average

SETTINGS = dict(max_examples=50, deadline=None, derandomize=True)

kernel_names = st.integers(2, 6).map(
    lambda n: tuple(f"K{i}" for i in range(n))
)

positive = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)

coupling_factor = st.floats(
    min_value=0.25, max_value=4.0, allow_nan=False, allow_infinity=False
)


@st.composite
def measured_flow(draw):
    """A cyclic flow, a chain length, and consistent measurements.

    Chain times are constructed as ``factor * sum(isolated)`` so each
    window's true coupling value is known exactly.
    """
    names = draw(kernel_names)
    flow = ControlFlow(names)
    length = draw(st.integers(2, len(names)))
    isolated = {k: draw(positive) for k in names}
    factors = {w: draw(coupling_factor) for w in flow.windows(length)}
    chains = {
        w: factors[w] * sum(isolated[k] for k in w)
        for w in flow.windows(length)
    }
    return flow, length, isolated, chains, factors


def make_inputs(flow, isolated, chains, iterations=10):
    return PredictionInputs(
        flow=flow,
        iterations=iterations,
        loop_times=isolated,
        chain_times=chains,
    )


# -- property 1: positivity ---------------------------------------------------


@settings(**SETTINGS)
@given(st.lists(positive, min_size=1, max_size=6), coupling_factor)
def test_coupling_values_are_strictly_positive(parts, factor):
    value = coupling_value(factor * sum(parts), parts)
    assert value > 0.0


@settings(**SETTINGS)
@given(measured_flow())
def test_coefficients_are_strictly_positive(bundle):
    flow, length, isolated, chains, _ = bundle
    cs = CouplingSet.from_performances(flow, length, chains, isolated)
    assert all(c > 0.0 for c in kernel_coefficients(cs).values())


# -- property 2: the neutral point --------------------------------------------


@settings(**SETTINGS)
@given(positive, positive)
def test_pairwise_coupling_is_one_iff_chain_equals_sum(p_i, p_j):
    # Exactly at P_ij == P_i + P_j the Eq. 1 coupling is exactly 1.
    assert coupling_value(p_i + p_j, [p_i, p_j]) == 1.0


@settings(**SETTINGS)
@given(positive, positive, coupling_factor)
def test_pairwise_coupling_deviates_exactly_with_the_chain(p_i, p_j, factor):
    value = coupling_value(factor * (p_i + p_j), [p_i, p_j])
    assert math.isclose(value, factor, rel_tol=1e-12)
    if factor > 1.0:
        assert value > 1.0
    elif factor < 1.0:
        assert value < 1.0


# -- property 3: convex weighted-average coefficients --------------------------


@settings(**SETTINGS)
@given(measured_flow())
def test_coefficients_match_the_weighted_average_formula(bundle):
    flow, length, isolated, chains, _ = bundle
    cs = CouplingSet.from_performances(flow, length, chains, isolated)
    coeffs = kernel_coefficients(cs)
    for kernel in flow.names:
        windows = flow.windows_containing(kernel, length)
        expected = weighted_average(
            values=[cs[w].value for w in windows],
            weights=[cs[w].chain_performance for w in windows],
        )
        assert math.isclose(coeffs[kernel], expected, rel_tol=1e-12)


@settings(**SETTINGS)
@given(measured_flow())
def test_coefficients_lie_in_the_convex_hull_of_their_couplings(bundle):
    flow, length, isolated, chains, _ = bundle
    cs = CouplingSet.from_performances(flow, length, chains, isolated)
    coeffs = kernel_coefficients(cs)
    for kernel in flow.names:
        own = [
            cs[w].value for w in flow.windows_containing(kernel, length)
        ]
        assert min(own) - 1e-9 <= coeffs[kernel] <= max(own) + 1e-9


# -- property 4: reduction to summation ----------------------------------------


@settings(**SETTINGS)
@given(measured_flow(), st.integers(1, 200))
def test_all_neutral_couplings_reduce_to_summation(bundle, iterations):
    flow, length, isolated, _, _ = bundle
    neutral_chains = {
        w: sum(isolated[k] for k in w) for w in flow.windows(length)
    }
    inputs = make_inputs(flow, isolated, neutral_chains, iterations)
    assert math.isclose(
        CouplingPredictor(length).predict(inputs),
        SummationPredictor().predict(inputs),
        rel_tol=1e-9,
    )


# -- supporting invariants -----------------------------------------------------


@settings(**SETTINGS)
@given(measured_flow(), st.floats(1.01, 3.0))
def test_prediction_is_monotone_in_chain_times(bundle, inflation):
    flow, length, isolated, chains, _ = bundle
    inputs = make_inputs(flow, isolated, chains)
    inflated = make_inputs(
        flow, isolated, {w: inflation * t for w, t in chains.items()}
    )
    predictor = CouplingPredictor(length)
    assert predictor.predict(inflated) > predictor.predict(inputs)


@settings(**SETTINGS)
@given(measured_flow(), st.floats(1.05, 3.0))
def test_destructive_couplings_predict_above_summation(bundle, factor):
    flow, length, isolated, _, _ = bundle
    chains = {
        w: factor * sum(isolated[k] for k in w) for w in flow.windows(length)
    }
    inputs = make_inputs(flow, isolated, chains)
    assert (
        CouplingPredictor(length).predict(inputs)
        > SummationPredictor().predict(inputs)
    )
