"""Benchmark base machinery: layouts, regions, kernel lookup."""

import pytest

from repro.errors import ConfigurationError
from repro.npb import BT, LU, SP, make_benchmark
from repro.npb.base import Layout
from repro.npb.classes import problem_size
from repro.simmpi.topology import CartGrid


class TestLayout:
    def test_even_decomposition(self):
        layout = Layout(problem_size("BT", "A"), CartGrid(2, 2))
        assert layout.local_dims(0) == (32, 32, 64)
        assert layout.local_points(0) == 32 * 32 * 64

    def test_uneven_decomposition(self):
        layout = Layout(problem_size("LU", "W"), CartGrid(2, 2))  # 33^3
        dims = [layout.local_dims(r) for r in range(4)]
        assert dims[0] == (17, 17, 33)
        assert dims[3] == (16, 16, 33)
        total = sum(layout.local_points(r) for r in range(4))
        assert total == 33**3

    def test_max_local_points(self):
        layout = Layout(problem_size("LU", "W"), CartGrid(2, 2))
        assert layout.max_local_points() == 17 * 17 * 33

    def test_too_fine_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="too fine"):
            Layout(problem_size("BT", "S"), CartGrid(13, 1))


class TestFactory:
    def test_make_benchmark_types(self):
        assert isinstance(make_benchmark("BT", "S", 4), BT)
        assert isinstance(make_benchmark("sp", "W", 4), SP)
        assert isinstance(make_benchmark("lu", "W", 4), LU)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            make_benchmark("FT", "S", 4)

    def test_bt_requires_square(self):
        with pytest.raises(ConfigurationError, match="square"):
            make_benchmark("BT", "S", 8)

    def test_lu_requires_pow2(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            make_benchmark("LU", "W", 9)


class TestKernels:
    @pytest.mark.parametrize("name,count", [("BT", 7), ("SP", 8), ("LU", 10)])
    def test_paper_kernel_counts(self, name, count):
        """§4.1: 7 BT kernels; §4.2: 8 SP kernels; §4.3: 10 LU kernels."""
        bench = make_benchmark(name, "S" if name != "SP" else "W", 4)
        assert len(bench.kernel_names()) == count

    def test_bt_loop_kernels_in_paper_order(self):
        bench = make_benchmark("BT", "S", 4)
        assert bench.loop_kernel_names == (
            "COPY_FACES", "X_SOLVE", "Y_SOLVE", "Z_SOLVE", "ADD",
        )

    def test_sp_has_txinvr(self):
        bench = make_benchmark("SP", "W", 4)
        assert "TXINVR" in bench.loop_kernel_names

    def test_lu_loop_kernels(self):
        bench = make_benchmark("LU", "W", 4)
        assert bench.loop_kernel_names == (
            "SSOR_ITER", "SSOR_LT", "SSOR_UT", "SSOR_RS",
        )

    def test_unknown_kernel_rejected(self):
        bench = make_benchmark("BT", "S", 4)
        with pytest.raises(ConfigurationError, match="no kernel"):
            bench.kernel("NOPE")

    def test_kernel_fields_cover_all_kernels(self):
        for name, cls in (("BT", "S"), ("SP", "W"), ("LU", "W")):
            bench = make_benchmark(name, cls, 4)
            fields = bench.kernel_fields()
            for kernel in bench.kernel_names():
                assert kernel in fields, (name, kernel)
                for field in fields[kernel]:
                    assert bench.region(0, field).nbytes > 0


class TestRegions:
    def test_region_sizes_scale_with_local_points(self):
        bench4 = make_benchmark("BT", "A", 4)
        bench16 = make_benchmark("BT", "A", 16)
        assert bench4.region(0, "u").nbytes == 4 * bench16.region(0, "u").nbytes

    def test_region_cached(self):
        bench = make_benchmark("BT", "S", 4)
        assert bench.region(0, "u") is bench.region(0, "u")

    def test_unknown_field_rejected(self):
        bench = make_benchmark("BT", "S", 4)
        with pytest.raises(ConfigurationError, match="no field"):
            bench.region(0, "bogus")

    def test_footprint_sums_fields(self):
        bench = make_benchmark("BT", "S", 4)
        per_point = sum(bench.field_bytes_per_point().values())
        assert bench.footprint_bytes(0) == per_point * bench.layout.local_points(0)

    def test_lu_jac_region_is_plane_sized(self):
        bench = make_benchmark("LU", "A", 4)
        nx, ny, nz = bench.layout.local_dims(0)
        jac = bench.region(0, "jac")
        assert jac.nbytes == 100 * 8 * nx * ny  # no nz factor

    def test_lu_footprint_uses_plane_sized_jac(self):
        bench = make_benchmark("LU", "A", 4)
        full = bench.footprint_bytes(0)
        naive = sum(bench.field_bytes_per_point().values()) * bench.layout.local_points(0)
        assert full < naive


class TestWorkingSetRegimes:
    """The capacity relationships the coupling transitions rely on."""

    def test_class_w_fits_l2_but_not_l1(self):
        from repro.simmachine import ibm_sp_argonne

        proc = ibm_sp_argonne().processor
        l1, l2 = (lv.capacity_bytes for lv in proc.cache_levels)
        bench = make_benchmark("BT", "W", 4)
        solve_bytes = sum(
            bench.region(0, f).nbytes for f in ("u", "rhs", "lhs")
        )
        assert l1 < solve_bytes <= l2

    def test_class_a_exceeds_l2_at_4_procs(self):
        from repro.simmachine import ibm_sp_argonne

        proc = ibm_sp_argonne().processor
        l2 = proc.cache_levels[-1].capacity_bytes
        bench = make_benchmark("BT", "A", 4)
        solve_bytes = sum(
            bench.region(0, f).nbytes for f in ("u", "rhs", "lhs")
        )
        assert solve_bytes > l2
