"""BT/SP/LU kernels executing on the simulated machine."""

import pytest

from repro.npb import make_benchmark
from tests.conftest import make_machine


def run_kernels(machine, bench, kernel_names, repeats=1):
    """Run a kernel sequence on every rank; returns elapsed sim time."""

    def program(ctx):
        for _ in range(repeats):
            for name in kernel_names:
                yield from bench.kernel(name)(ctx)

    return machine.run(program)


@pytest.mark.parametrize(
    "name,cls,procs",
    [
        ("BT", "S", 1),
        ("BT", "S", 4),
        ("BT", "S", 9),
        ("SP", "S", 4),
        ("SP", "W", 4),
        ("LU", "S", 2),
        ("LU", "S", 4),
        ("LU", "W", 8),
    ],
)
def test_full_kernel_sequence_completes(quiet_config, name, cls, procs):
    """Every kernel runs deadlock-free at assorted sizes and proc counts."""
    bench = make_benchmark(name, cls, procs)
    machine = make_machine(quiet_config, procs)
    elapsed = run_kernels(machine, bench, bench.kernel_names())
    assert elapsed > 0
    world = machine.contexts[0].comm.world
    assert world.unmatched_messages() == 0


class TestBT:
    def test_each_loop_kernel_runs_alone(self, quiet_config):
        bench = make_benchmark("BT", "S", 4)
        for kernel in bench.loop_kernel_names:
            machine = make_machine(quiet_config, 4)
            assert run_kernels(machine, bench, [kernel]) > 0

    def test_copy_faces_sends_to_all_neighbors(self, quiet_config):
        bench = make_benchmark("BT", "S", 9)
        machine = make_machine(quiet_config, 9)
        run_kernels(machine, bench, ["COPY_FACES"])
        # Center rank of the 3x3 grid has 4 neighbors.
        center = bench.grid.rank_of(1, 1)
        c = machine.contexts[center].counters["COPY_FACES"]
        assert c.messages_sent == 4

    def test_solve_kernels_communicate_only_when_decomposed(self, quiet_config):
        bench = make_benchmark("BT", "S", 1)
        machine = make_machine(quiet_config, 1)
        run_kernels(machine, bench, ["X_SOLVE", "Y_SOLVE", "Z_SOLVE"])
        for kernel in ("X_SOLVE", "Y_SOLVE", "Z_SOLVE"):
            assert machine.counters_for(kernel).messages_sent == 0

    def test_x_solve_stage_messages(self, quiet_config):
        bench = make_benchmark("BT", "S", 4)  # 2x2 grid -> 2 stages
        machine = make_machine(quiet_config, 4)
        run_kernels(machine, bench, ["X_SOLVE"])
        c = machine.contexts[0].counters["X_SOLVE"]
        assert c.messages_sent == 2  # one boundary exchange per stage

    def test_z_solve_is_local(self, quiet_config):
        bench = make_benchmark("BT", "S", 4)
        machine = make_machine(quiet_config, 4)
        run_kernels(machine, bench, ["Z_SOLVE"])
        assert machine.counters_for("Z_SOLVE").messages_sent == 0

    def test_flop_attribution(self, quiet_config):
        from repro.npb.workloads import BT_FLOPS_PER_POINT

        bench = make_benchmark("BT", "S", 4)
        machine = make_machine(quiet_config, 4)
        run_kernels(machine, bench, ["ADD"])
        expected = BT_FLOPS_PER_POINT["ADD"] * bench.size.points
        assert machine.counters_for("ADD").flops == pytest.approx(expected)

    def test_lhs_shared_between_solves(self):
        bench = make_benchmark("BT", "S", 4)
        assert bench.region(0, "lhs") is bench.region(0, "lhs")
        fields = bench.kernel_fields()
        assert "lhs" in fields["X_SOLVE"]
        assert "lhs" in fields["Y_SOLVE"]
        assert "lhs" in fields["Z_SOLVE"]


class TestSP:
    def test_txinvr_follows_copy_faces_sharing_rhs(self):
        bench = make_benchmark("SP", "W", 4)
        fields = bench.kernel_fields()
        assert "rhs" in fields["COPY_FACES"]
        assert "rhs" in fields["TXINVR"]

    def test_loop_order_matches_paper(self):
        bench = make_benchmark("SP", "W", 4)
        assert bench.loop_kernel_names.index("TXINVR") == 1

    def test_final_uses_allreduce(self, quiet_config):
        bench = make_benchmark("SP", "W", 4)
        machine = make_machine(quiet_config, 4)
        run_kernels(machine, bench, ["FINAL"])
        assert machine.counters_for("FINAL").messages_sent > 0


class TestLU:
    def test_sweep_pipelines_by_plane(self, quiet_config):
        bench = make_benchmark("LU", "S", 4)  # 2x2 grid, nz=12
        machine = make_machine(quiet_config, 4)
        run_kernels(machine, bench, ["SSOR_LT"])
        # Corner rank (0,0) sends one burst per plane to east and south.
        c = machine.contexts[0].counters["SSOR_LT"]
        nx, ny, nz = bench.layout.local_dims(0)
        assert c.messages_sent == nz * 2  # two neighbor bursts per plane

    def test_sweep_message_bytes_are_five_words_per_point(self, quiet_config):
        bench = make_benchmark("LU", "S", 2)  # 2x1 grid: only x neighbor
        machine = make_machine(quiet_config, 2)
        run_kernels(machine, bench, ["SSOR_LT"])
        c = machine.contexts[0].counters["SSOR_LT"]
        nx, ny, nz = bench.layout.local_dims(0)
        assert c.bytes_sent == nz * 40 * ny

    def test_ut_sweeps_opposite_corner(self, quiet_config):
        bench = make_benchmark("LU", "S", 4)
        machine = make_machine(quiet_config, 4)
        run_kernels(machine, bench, ["SSOR_UT"])
        # Rank (1,1) (last corner) is the UT source: it sends, never waits
        # on dependencies.
        last = bench.grid.rank_of(1, 1)
        c = machine.contexts[last].counters["SSOR_UT"]
        nz = bench.layout.local_dims(last)[2]
        assert c.messages_sent == nz * 2

    def test_latency_sensitivity(self, quiet_config):
        """The paper: LU 'is very sensitive to the small-message
        communication performance'. Doubling latency must slow the sweep
        noticeably more than it slows a local kernel."""
        bench = make_benchmark("LU", "S", 4)
        slow_net = quiet_config.with_(
            network=quiet_config.network.__class__(
                **{
                    **quiet_config.network.__dict__,
                    "latency": quiet_config.network.latency * 10,
                }
            )
        )
        fast = run_kernels(make_machine(quiet_config, 4), bench, ["SSOR_LT"])
        slow = run_kernels(make_machine(slow_net, 4), bench, ["SSOR_LT"])
        fast_local = run_kernels(make_machine(quiet_config, 4), bench, ["SSOR_ITER"])
        slow_local = run_kernels(make_machine(slow_net, 4), bench, ["SSOR_ITER"])
        sweep_ratio = slow / fast
        local_ratio = slow_local / fast_local
        assert sweep_ratio > 1.1
        assert sweep_ratio > local_ratio * 1.05

    def test_jac_shared_between_sweeps(self):
        bench = make_benchmark("LU", "S", 4)
        fields = bench.kernel_fields()
        assert "jac" in fields["SSOR_LT"]
        assert "jac" in fields["SSOR_UT"]
