"""CG work-alike (library extension beyond the paper's three codes)."""

import pytest

from repro.core import ControlFlow
from repro.errors import ConfigurationError
from repro.instrument import ApplicationRunner, ChainRunner, MeasurementConfig
from repro.npb import make_benchmark
from repro.npb.cg import CG_SIZES
from repro.simmachine import ibm_sp_argonne
from tests.conftest import make_machine


@pytest.fixture(scope="module")
def bench():
    return make_benchmark("CG", "S", 4)


class TestStructure:
    def test_factory_dispatch(self, bench):
        assert bench.name == "CG"
        assert bench.loop_kernel_names == (
            "MATVEC", "DOT_PQ", "UPDATE_ZR", "RESID_P",
        )

    @pytest.mark.parametrize("cls,rows", [("S", 1400), ("A", 14000), ("C", 150000)])
    def test_npb_sizes(self, cls, rows):
        assert CG_SIZES[cls][0] == rows

    def test_requires_pow2(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            make_benchmark("CG", "S", 6)

    def test_unknown_class(self):
        with pytest.raises(ConfigurationError, match="unknown class"):
            make_benchmark("CG", "Z", 4)

    def test_one_dimensional_row_distribution(self, bench):
        assert bench.grid.py == 1
        total = sum(bench.layout.local_points(r) for r in bench.ranks())
        assert total == 1400

    def test_p_full_region_is_global_length(self, bench):
        assert bench.region(0, "p_full").nbytes == 8 * 1400
        assert bench.region(0, "p").nbytes == 8 * 350

    def test_footprint_includes_gathered_vector(self, bench):
        assert bench.footprint_bytes(0) > bench.region(0, "p_full").nbytes


class TestExecution:
    def test_full_sequence_runs(self, quiet_config, bench):
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            for kernel in bench.kernel_names():
                yield from bench.kernel(kernel)(ctx)

        assert machine.run(program) > 0
        world = machine.contexts[0].comm.world
        assert world.unmatched_messages() == 0

    def test_matvec_allgathers(self, quiet_config, bench):
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            yield from bench.kernel("MATVEC")(ctx)

        machine.run(program)
        # Ring allgather: P-1 messages per rank.
        assert machine.counters_for("MATVEC").messages_sent == 4 * 3

    def test_dot_kernels_allreduce(self, quiet_config, bench):
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            yield from bench.kernel("DOT_PQ")(ctx)
            yield from bench.kernel("UPDATE_ZR")(ctx)

        machine.run(program)
        assert machine.counters_for("DOT_PQ").messages_sent > 0
        assert machine.counters_for("UPDATE_ZR").messages_sent == 0


class TestPrediction:
    def test_coupling_beats_summation(self):
        from repro.core import CouplingPredictor, PredictionInputs, SummationPredictor

        bench = make_benchmark("CG", "W", 4)
        machine = ibm_sp_argonne()
        runner = ChainRunner(
            bench, machine, MeasurementConfig(repetitions=4, warmup=2)
        )
        flow = ControlFlow(bench.loop_kernel_names)
        iso = {k: m.mean for k, m in runner.measure_all_isolated(flow.names).items()}
        chains = {w: runner.measure(w).mean for w in flow.windows(2)}
        pre = {k: runner.measure((k,)).mean for k in bench.pre_kernel_names}
        post = {k: runner.measure((k,)).mean for k in bench.post_kernel_names}
        inputs = PredictionInputs(
            flow=flow, iterations=bench.iterations, loop_times=iso,
            pre_times=pre, post_times=post, chain_times=chains,
        )
        actual = ApplicationRunner(bench, machine).run().total_time
        summ_err = abs(SummationPredictor().predict(inputs) - actual) / actual
        coup_err = abs(CouplingPredictor(2).predict(inputs) - actual) / actual
        assert coup_err < summ_err
