"""Problem classes: grids and iteration counts from the paper's tables."""

import pytest

from repro.errors import ConfigurationError
from repro.npb.classes import iterations_for, problem_size


class TestPaperTables:
    """Tables 1, 5 and 7 of the paper."""

    @pytest.mark.parametrize(
        "cls,n", [("S", 12), ("W", 32), ("A", 64), ("B", 102)]
    )
    def test_bt_grids(self, cls, n):
        size = problem_size("BT", cls)
        assert (size.nx, size.ny, size.nz) == (n, n, n)

    @pytest.mark.parametrize("cls,n", [("W", 36), ("A", 64), ("B", 102)])
    def test_sp_grids(self, cls, n):
        size = problem_size("SP", cls)
        assert (size.nx, size.ny, size.nz) == (n, n, n)

    @pytest.mark.parametrize("cls,n", [("W", 33), ("A", 64), ("B", 102)])
    def test_lu_grids(self, cls, n):
        size = problem_size("LU", cls)
        assert (size.nx, size.ny, size.nz) == (n, n, n)

    def test_bt_iteration_counts_from_paper(self):
        # "called 60 times for Class S, and 200 times for Class W and A."
        assert iterations_for("BT", "S") == 60
        assert iterations_for("BT", "W") == 200
        assert iterations_for("BT", "A") == 200


class TestProblemSize:
    def test_points(self):
        assert problem_size("BT", "S").points == 12**3

    def test_label(self):
        assert "BT class A" in problem_size("BT", "A").label
        assert "64 x 64 x 64" in problem_size("BT", "A").label

    def test_case_insensitive(self):
        assert problem_size("bt", "a") == problem_size("BT", "A")

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError, match="unknown benchmark"):
            problem_size("CG", "A")

    def test_unknown_class(self):
        with pytest.raises(ConfigurationError, match="unknown class"):
            problem_size("BT", "Z")


class TestClassC:
    """Class C (162^3) extends beyond the paper for larger studies."""

    @pytest.mark.parametrize("bench", ["BT", "SP", "LU"])
    def test_class_c_available(self, bench):
        size = problem_size(bench, "C")
        assert size.nx == 162
