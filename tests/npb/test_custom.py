"""User-defined applications (CustomApplication)."""

import pytest

from repro.errors import ConfigurationError
from repro.instrument import ApplicationRunner, ChainRunner, MeasurementConfig
from repro.npb.custom import CustomApplication, CustomSpec
from repro.simmachine import ibm_sp_argonne
from repro.simmpi import CartGrid


def small_spec(**overrides):
    base = dict(
        name="TOY",
        nx=16,
        ny=16,
        nz=8,
        iterations=20,
        grid=CartGrid(2, 2),
        fields={"a": 40, "b": 40, "scratch": 160},
        loop_kernels=("PRODUCE", "CONSUME"),
        kernel_fields={
            "PRODUCE": ("a", "scratch", "b"),
            "CONSUME": ("b", "a"),
            "SETUP": ("a",),
        },
        flops_per_point={"PRODUCE": 200.0, "CONSUME": 50.0, "SETUP": 10.0},
        pre_kernels=("SETUP",),
        halo_bytes_per_point={"PRODUCE": 40},
    )
    base.update(overrides)
    return CustomSpec(**base)


@pytest.fixture(scope="module")
def app():
    return CustomApplication(small_spec(), nprocs=4)


class TestSpecValidation:
    def test_valid_spec_builds(self, app):
        assert app.kernel_names() == ("SETUP", "PRODUCE", "CONSUME")

    def test_rank_count_must_match_grid(self):
        with pytest.raises(ConfigurationError, match="ranks"):
            CustomApplication(small_spec(), nprocs=9)

    def test_unknown_field_rejected(self):
        spec = small_spec(
            kernel_fields={
                "PRODUCE": ("nope",),
                "CONSUME": ("b", "a"),
                "SETUP": ("a",),
            }
        )
        with pytest.raises(ConfigurationError, match="unknown field"):
            CustomApplication(spec, nprocs=4)

    def test_missing_flops_rejected(self):
        spec = small_spec(flops_per_point={"PRODUCE": 1.0, "SETUP": 1.0})
        with pytest.raises(ConfigurationError, match="flops_per_point"):
            CustomApplication(spec, nprocs=4)

    def test_missing_kernel_fields_rejected(self):
        spec = small_spec(
            kernel_fields={"PRODUCE": ("a",), "SETUP": ("a",)}
        )
        with pytest.raises(ConfigurationError, match="kernel_fields"):
            CustomApplication(spec, nprocs=4)

    def test_needs_loop_kernels(self):
        with pytest.raises(ConfigurationError):
            CustomSpec(
                name="X",
                nx=8, ny=8, nz=8,
                iterations=1,
                grid=CartGrid(1, 1),
                fields={},
                loop_kernels=(),
                kernel_fields={},
                flops_per_point={},
            ).validate()


class TestExecution:
    def test_runs_through_harness(self, app):
        runner = ChainRunner(
            app, ibm_sp_argonne(), MeasurementConfig(repetitions=2, warmup=1)
        )
        m = runner.measure(("PRODUCE",))
        assert m.mean > 0

    def test_application_runner_works(self, app):
        result = ApplicationRunner(app, ibm_sp_argonne()).run()
        assert result.total_time > 0
        assert result.iterations == 20
        assert "PRODUCE" in result.counters

    def test_halo_kernel_communicates(self, app):
        from tests.conftest import make_machine

        machine = make_machine(ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0), 4)

        def program(ctx):
            yield from app.kernel("PRODUCE")(ctx)
            yield from app.kernel("CONSUME")(ctx)

        machine.run(program)
        assert machine.counters_for("PRODUCE").messages_sent > 0
        assert machine.counters_for("CONSUME").messages_sent == 0

    def test_producer_consumer_coupling_constructive(self, app):
        runner = ChainRunner(
            app, ibm_sp_argonne(), MeasurementConfig(repetitions=3, warmup=1)
        )
        p = runner.measure(("PRODUCE",)).mean
        c = runner.measure(("CONSUME",)).mean
        pc = runner.measure(("PRODUCE", "CONSUME")).mean
        assert pc < p + c  # CONSUME reads b straight out of PRODUCE
