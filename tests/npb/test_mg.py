"""MG work-alike (multigrid V-cycle, library extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.npb import make_benchmark
from tests.conftest import make_machine


@pytest.fixture(scope="module")
def bench():
    return make_benchmark("MG", "S", 4)


class TestStructure:
    def test_v_cycle_kernels(self, bench):
        assert bench.loop_kernel_names == ("RESID", "RPRJ3", "PSINV", "INTERP")

    def test_requires_pow2(self):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            make_benchmark("MG", "S", 6)

    def test_levels_from_grid(self, bench):
        # 32 -> 16 -> 8 -> 4: three halvings before stopping.
        assert bench.levels == 3

    def test_class_a_levels(self):
        assert make_benchmark("MG", "A", 4).levels == 6  # 256 -> 4

    def test_hierarchy_footprint(self, bench):
        # u and r carry the 8/7 hierarchy factor, v only the finest grid.
        per_point = bench.field_bytes_per_point()
        assert per_point["u"] > per_point["v"]

    def test_iterations(self, bench):
        assert bench.iterations == 4


class TestExecution:
    def test_full_sequence_runs(self, quiet_config, bench):
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            for kernel in bench.kernel_names():
                yield from bench.kernel(kernel)(ctx)

        assert machine.run(program) > 0
        assert machine.contexts[0].comm.world.unmatched_messages() == 0

    def test_psinv_exchanges_once_per_level(self, quiet_config, bench):
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            yield from bench.kernel("PSINV")(ctx)

        machine.run(program)
        # 2x2 grid: 2 neighbors per rank, one exchange per level.
        c = machine.contexts[0].counters["PSINV"]
        assert c.messages_sent == 2 * bench.levels

    def test_resid_exchanges_only_finest(self, quiet_config, bench):
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            yield from bench.kernel("RESID")(ctx)

        machine.run(program)
        assert machine.contexts[0].counters["RESID"].messages_sent == 2

    def test_coarse_messages_smaller(self, quiet_config, bench):
        """The level hierarchy must shrink message sizes geometrically."""
        machine = make_machine(quiet_config, 4)

        def program(ctx):
            yield from bench.kernel("RPRJ3")(ctx)

        machine.run(program)
        c = machine.contexts[0].counters["RPRJ3"]
        # Levels 1..2 on a 16x16x32 local block, 2 neighbors each:
        # faces 8*32 and 4*16 points -> strictly less than two finest faces.
        finest_face_bytes = 8 * 16 * 32
        assert c.bytes_sent < 2 * 2 * finest_face_bytes

    def test_single_rank_has_no_messages(self, quiet_config):
        bench = make_benchmark("MG", "S", 1)
        machine = make_machine(quiet_config, 1)

        def program(ctx):
            for kernel in bench.loop_kernel_names:
                yield from bench.kernel(kernel)(ctx)

        machine.run(program)
        for kernel in bench.loop_kernel_names:
            assert machine.counters_for(kernel).messages_sent == 0


class TestPrediction:
    def test_coupling_beats_summation(self):
        from repro import quick_prediction

        report = quick_prediction("MG", "S", 4, chain_length=2)
        errors = report.errors()
        assert errors["Coupling: 2 kernels"] < errors["Summation"]
        assert errors["Coupling: 2 kernels"] < 5.0
