"""Host mini-app: real-hardware coupling measurement (smoke-level).

Host timings are nondeterministic, so these tests assert well-formedness
and basic physical sanity (positive times, complete coupling sets), not
specific values.
"""

import pytest

from repro.errors import ConfigurationError
from repro.npb.miniapp import HostMiniApp


@pytest.fixture(scope="module")
def app():
    return HostMiniApp(n=24, repetitions=3)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HostMiniApp(n=4)
        with pytest.raises(ConfigurationError):
            HostMiniApp(n=24, repetitions=0)

    def test_three_sweep_kernels(self, app):
        assert app.flow.names == ("X_SWEEP", "Y_SWEEP", "Z_SWEEP")


class TestMeasurement:
    def test_isolated_measurement(self, app):
        m = app.measure(("X_SWEEP",))
        assert m.mean > 0
        assert len(m.samples) == 3

    def test_chain_measurement(self, app):
        m = app.measure(("X_SWEEP", "Y_SWEEP"))
        assert m.kernels == ("X_SWEEP", "Y_SWEEP")
        assert m.mean > 0

    def test_unknown_kernel_rejected(self, app):
        with pytest.raises(ConfigurationError):
            app.measure(("NOPE",))

    def test_coupling_set_complete(self, app):
        cs = app.coupling_set(chain_length=2)
        assert len(cs) == 3
        assert all(c.value > 0 for c in cs)

    def test_application_time_positive(self, app):
        assert app.application_time(iterations=2) > 0

    def test_application_iterations_validated(self, app):
        with pytest.raises(ConfigurationError):
            app.application_time(iterations=0)
