"""Block-coupled ADI solver (the executable 5x5-block BT structure)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.npb.numerics.blockadi import block_adi_step, coupled_operator_norm
from repro.npb.numerics.grids import Grid3D, adi_diffusion_step, manufactured_solution


@pytest.fixture
def grid():
    return Grid3D(7, 7, 7)


def stack(grid, b=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(grid.shape + (b,))


class TestLimits:
    def test_zero_coupling_matches_scalar_adi(self, grid):
        """K = 0: every component must equal the scalar ADI step exactly."""
        u = stack(grid, b=3)
        out = block_adi_step(u, grid, dt=1e-3, coupling=np.zeros((3, 3)))
        for c in range(3):
            scalar = adi_diffusion_step(u[..., c], grid, dt=1e-3)
            np.testing.assert_allclose(out[..., c], scalar, rtol=1e-10)

    def test_diagonal_coupling_decouples(self, grid):
        """Diagonal K: component c solves the scalar problem with a
        (1 - dt/3 * K_cc) shift on each directional diagonal."""
        k = np.diag([0.5, -0.25])
        u0 = manufactured_solution(grid)
        u = np.stack([u0, 2 * u0], axis=-1)
        dt = 1e-3
        out = block_adi_step(u, grid, dt, coupling=k)
        # For the sine mode, each directional solve divides by
        # (1 + dt*lam_axis - dt/3 * K_cc), lam_axis the 1-D eigenvalue.
        for c, kcc in enumerate([0.5, -0.25]):
            factor = 1.0
            for h in grid.spacing:
                lam = 4.0 / h**2 * np.sin(np.pi * h / 2) ** 2
                factor /= 1.0 + dt * lam - dt / 3.0 * kcc
            np.testing.assert_allclose(
                out[..., c], u[..., c] * factor, rtol=1e-10
            )

    def test_five_component_bt_blocks(self, grid):
        """The BT case: 5x5 blocks with full off-diagonal coupling."""
        rng = np.random.default_rng(3)
        k = 0.1 * rng.standard_normal((5, 5))
        u = stack(grid, b=5, seed=4)
        out = block_adi_step(u, grid, dt=1e-3, coupling=k)
        assert out.shape == u.shape
        assert np.all(np.isfinite(out))


class TestStability:
    def test_dissipative_system_contracts(self, grid):
        """With a negative-semidefinite K the step must not grow."""
        k = -0.5 * np.eye(4)
        u = stack(grid, b=4, seed=5)
        out = block_adi_step(u, grid, dt=0.5, coupling=k)
        assert coupled_operator_norm(out) <= coupled_operator_norm(u)

    def test_large_time_step_stable(self, grid):
        u = stack(grid, b=2, seed=6)
        out = block_adi_step(u, grid, dt=50.0, coupling=np.zeros((2, 2)))
        assert coupled_operator_norm(out) <= coupled_operator_norm(u) + 1e-12


class TestValidation:
    def test_shape_mismatch_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            block_adi_step(
                np.zeros((3, 3, 3, 2)), grid, 1e-3, np.zeros((2, 2))
            )

    def test_coupling_shape_checked(self, grid):
        with pytest.raises(ConfigurationError):
            block_adi_step(stack(grid, 3), grid, 1e-3, np.zeros((2, 2)))

    def test_positive_dt_required(self, grid):
        with pytest.raises(ConfigurationError):
            block_adi_step(stack(grid, 2), grid, -1.0, np.zeros((2, 2)))
