"""3D grids, Laplacian, ADI sweeps, and mini-app verification."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.npb.numerics.grids import (
    Grid3D,
    adi_diffusion_step,
    laplacian_3d,
    manufactured_solution,
    residual_norm,
)
from repro.npb.verify import verify


class TestGrid:
    def test_shape_and_spacing(self):
        grid = Grid3D(7, 7, 7)
        assert grid.shape == (7, 7, 7)
        assert grid.spacing == (0.125, 0.125, 0.125)

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            Grid3D(2, 7, 7)

    def test_coordinates_interior(self):
        grid = Grid3D(3, 3, 3)
        x, y, z = grid.coordinates()
        assert x.min() > 0.0 and x.max() < 1.0
        assert x.shape == grid.shape


class TestLaplacian:
    def test_manufactured_eigenfunction(self):
        """sin products are eigenfunctions of the discrete Laplacian."""
        grid = Grid3D(15, 15, 15)
        u = manufactured_solution(grid)
        lap = laplacian_3d(u, grid)
        # Discrete eigenvalue: -sum_axis 4/h^2 sin^2(pi h / 2).
        lam = sum(
            -4.0 / h**2 * np.sin(np.pi * h / 2) ** 2 for h in grid.spacing
        )
        np.testing.assert_allclose(lap, lam * u, rtol=1e-10, atol=1e-12)

    def test_second_order_convergence(self):
        """Error vs -3pi^2 u must shrink ~4x when h halves."""
        errors = []
        for n in (7, 15):
            grid = Grid3D(n, n, n)
            u = manufactured_solution(grid)
            lap = laplacian_3d(u, grid)
            exact = -3.0 * np.pi**2 * u
            errors.append(np.max(np.abs(lap - exact)))
        assert errors[0] / errors[1] > 3.0

    def test_shape_checked(self):
        with pytest.raises(ConfigurationError):
            laplacian_3d(np.zeros((3, 3, 3)), Grid3D(4, 4, 4))

    def test_residual_norm_zero_for_consistent_pair(self):
        grid = Grid3D(8, 8, 8)
        u = manufactured_solution(grid)
        rhs = laplacian_3d(u, grid)
        assert residual_norm(u, rhs, grid) < 1e-10


class TestADI:
    def test_decays_fundamental_mode(self):
        grid = Grid3D(9, 9, 9)
        u = manufactured_solution(grid)
        out = adi_diffusion_step(u, grid, dt=1e-3)
        assert np.max(np.abs(out)) < np.max(np.abs(u))
        # Shape preserved: still the same mode (no distortion).
        ratio = out / u
        assert np.ptp(ratio) < 1e-10

    def test_unconditionally_stable(self):
        grid = Grid3D(9, 9, 9)
        rng = np.random.default_rng(8)
        u = rng.standard_normal(grid.shape)
        out = adi_diffusion_step(u, grid, dt=10.0)  # huge step
        assert np.max(np.abs(out)) <= np.max(np.abs(u)) + 1e-12

    def test_parameters_validated(self):
        grid = Grid3D(5, 5, 5)
        u = np.zeros(grid.shape)
        with pytest.raises(ConfigurationError):
            adi_diffusion_step(u, grid, dt=-1.0)
        with pytest.raises(ConfigurationError):
            adi_diffusion_step(np.zeros((4, 4, 4)), grid, dt=1e-3)


class TestVerification:
    """The class-S mini-apps (NPB's verification stage equivalent)."""

    @pytest.mark.parametrize("bench_name", ["BT", "SP", "LU"])
    def test_passes(self, bench_name):
        result = verify(bench_name)
        assert result.passed, result.detail
        assert result.error < result.tolerance

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            verify("FT")
