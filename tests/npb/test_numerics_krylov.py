"""Conjugate gradient solver vs SciPy and theory."""

import numpy as np
import pytest
import scipy.sparse.linalg

from repro.errors import ConfigurationError
from repro.npb.numerics.krylov import (
    conjugate_gradient,
    nas_style_sparse_matrix,
)


@pytest.fixture(scope="module")
def system():
    matrix = nas_style_sparse_matrix(500, 7, seed=3)
    rng = np.random.default_rng(4)
    x_true = rng.standard_normal(500)
    return matrix, x_true, matrix @ x_true


class TestConjugateGradient:
    def test_solves_spd_system(self, system):
        matrix, x_true, rhs = system
        result = conjugate_gradient(lambda v: matrix @ v, rhs, tolerance=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6, atol=1e-8)

    def test_matches_scipy(self, system):
        matrix, _x_true, rhs = system
        ours = conjugate_gradient(lambda v: matrix @ v, rhs, tolerance=1e-12)
        scipys, info = scipy.sparse.linalg.cg(matrix, rhs, rtol=1e-12)
        assert info == 0
        np.testing.assert_allclose(ours.x, scipys, rtol=1e-6, atol=1e-8)

    def test_residuals_decrease_overall(self, system):
        matrix, _x, rhs = system
        result = conjugate_gradient(lambda v: matrix @ v, rhs)
        assert result.residual_norms[-1] < 1e-8 * result.residual_norms[0]

    def test_exact_in_n_steps_small_dense(self):
        """CG terminates in at most n iterations (exact arithmetic ~)."""
        rng = np.random.default_rng(5)
        a = rng.standard_normal((12, 12))
        spd = a @ a.T + 12 * np.eye(12)
        x_true = rng.standard_normal(12)
        result = conjugate_gradient(
            lambda v: spd @ v, spd @ x_true, tolerance=1e-12
        )
        assert result.iterations <= 12
        np.testing.assert_allclose(result.x, x_true, rtol=1e-8)

    def test_diagonal_system_one_iteration(self):
        rhs = np.array([2.0, 4.0, 6.0])
        result = conjugate_gradient(lambda v: 2.0 * v, rhs)
        assert result.iterations == 1
        np.testing.assert_allclose(result.x, rhs / 2.0)

    def test_indefinite_operator_rejected(self):
        rhs = np.ones(4)
        with pytest.raises(ConfigurationError, match="positive definite"):
            conjugate_gradient(lambda v: -v, rhs)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            conjugate_gradient(lambda v: v, np.ones((2, 2)))
        with pytest.raises(ConfigurationError):
            conjugate_gradient(lambda v: v, np.ones(3), tolerance=0.0)

    def test_max_iterations_caps_work(self, system):
        matrix, _x, rhs = system
        result = conjugate_gradient(
            lambda v: matrix @ v, rhs, tolerance=1e-14, max_iterations=2
        )
        assert result.iterations == 2
        assert not result.converged


class TestMakea:
    def test_matrix_is_symmetric(self):
        m = nas_style_sparse_matrix(100, 5, seed=1)
        diff = (m - m.T)
        assert abs(diff).max() < 1e-12

    def test_matrix_is_positive_definite(self):
        m = nas_style_sparse_matrix(60, 5, seed=2).toarray()
        eigs = np.linalg.eigvalsh(m)
        assert eigs.min() > 0

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            nas_style_sparse_matrix(1, 1)
        with pytest.raises(ConfigurationError):
            nas_style_sparse_matrix(10, 11)
