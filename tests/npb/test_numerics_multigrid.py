"""Multigrid V-cycle: transfer operators and mesh-independent convergence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.npb.numerics.multigrid import (
    mg_solve,
    prolong_field,
    restrict_field,
    v_cycle,
)
from repro.npb.numerics.ssor import apply_operator


class TestTransferOperators:
    def test_restrict_halves_dimensions(self):
        fine = np.ones((8, 8, 8))
        assert restrict_field(fine).shape == (4, 4, 4)

    def test_restrict_preserves_constants(self):
        fine = 3.0 * np.ones((8, 8, 8))
        np.testing.assert_allclose(restrict_field(fine), 3.0)

    def test_restrict_requires_even_dims(self):
        with pytest.raises(ConfigurationError, match="even"):
            restrict_field(np.ones((7, 8, 8)))

    def test_prolong_doubles_dimensions(self):
        coarse = np.ones((4, 4, 4))
        assert prolong_field(coarse).shape == (8, 8, 8)

    def test_prolong_then_restrict_is_identity(self):
        rng = np.random.default_rng(1)
        coarse = rng.standard_normal((4, 4, 4))
        np.testing.assert_allclose(
            restrict_field(prolong_field(coarse)), coarse
        )

    def test_transfer_adjoint_scaling(self):
        """<R f, c> = 1/8 <f, P c> — averaging vs injection transpose."""
        rng = np.random.default_rng(2)
        fine = rng.standard_normal((8, 8, 8))
        coarse = rng.standard_normal((4, 4, 4))
        lhs = np.sum(restrict_field(fine) * coarse)
        rhs = np.sum(fine * prolong_field(coarse)) / 8.0
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestVCycle:
    DIAG, OFF = 7.0, 1.0

    def test_reduces_residual(self):
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal((16, 16, 16))
        u0 = np.zeros_like(rhs)
        u1 = v_cycle(u0, rhs, self.DIAG, self.OFF)
        r0 = np.linalg.norm(rhs - apply_operator(u0, self.DIAG, self.OFF))
        r1 = np.linalg.norm(rhs - apply_operator(u1, self.DIAG, self.OFF))
        assert r1 < 0.6 * r0

    def test_input_unmodified(self):
        rng = np.random.default_rng(4)
        rhs = rng.standard_normal((8, 8, 8))
        u0 = np.zeros_like(rhs)
        v_cycle(u0, rhs, self.DIAG, self.OFF)
        assert np.all(u0 == 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            v_cycle(
                np.zeros((8, 8, 8)), np.zeros((8, 8, 4)), self.DIAG, self.OFF
            )

    def test_odd_grids_handled_by_coarsest_solve(self):
        rng = np.random.default_rng(5)
        rhs = rng.standard_normal((6, 6, 6))  # halves once then goes odd
        out = v_cycle(np.zeros_like(rhs), rhs, self.DIAG, self.OFF)
        assert np.all(np.isfinite(out))


class TestMGSolve:
    DIAG, OFF = 7.0, 1.0

    def test_converges_to_solution(self):
        rng = np.random.default_rng(6)
        x_true = rng.standard_normal((16, 16, 16))
        rhs = apply_operator(x_true, self.DIAG, self.OFF)
        u, history = mg_solve(rhs, self.DIAG, self.OFF, cycles=12)
        np.testing.assert_allclose(u, x_true, rtol=1e-5, atol=1e-6)
        assert history[-1] < 1e-6 * history[0]

    def test_mesh_independent_contraction(self):
        """Multigrid's defining property: the per-cycle contraction factor
        does not degrade as the grid refines."""
        rates = []
        for n in (8, 16, 32):
            rng = np.random.default_rng(n)
            rhs = rng.standard_normal((n, n, n))
            _, history = mg_solve(rhs, self.DIAG, self.OFF, cycles=5)
            rates.append((history[-1] / history[0]) ** 0.2)
        assert max(rates) < 0.6
        assert max(rates) - min(rates) < 0.15

    def test_dominance_required(self):
        with pytest.raises(ConfigurationError, match="dominant"):
            mg_solve(np.ones((8, 8, 8)), 5.0, 1.0)

    def test_cycles_validated(self):
        with pytest.raises(ConfigurationError):
            mg_solve(np.ones((8, 8, 8)), 7.0, 1.0, cycles=0)


class TestVerification:
    @pytest.mark.parametrize("bench_name", ["CG", "MG"])
    def test_extended_verify_passes(self, bench_name):
        from repro.npb.verify import verify

        result = verify(bench_name)
        assert result.passed, result.detail
