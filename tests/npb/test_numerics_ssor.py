"""SSOR solver: convergence and operator identities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.npb.numerics.ssor import apply_operator, ssor_solve, ssor_sweep


def dominant(shape=(6, 6, 6)):
    return 7.0, 1.0, shape


class TestOperator:
    def test_diagonal_only(self):
        u = np.ones((3, 3, 3))
        out = apply_operator(u, diag=2.0, offdiag=0.0)
        np.testing.assert_allclose(out, 2.0 * u)

    def test_matches_dense_matrix(self):
        rng = np.random.default_rng(3)
        shape = (3, 4, 2)
        n = np.prod(shape)
        diag, offdiag = 7.0, 1.0
        dense = np.zeros((n, n))
        idx = np.arange(n).reshape(shape)
        for i in range(shape[0]):
            for j in range(shape[1]):
                for k in range(shape[2]):
                    row = idx[i, j, k]
                    dense[row, row] = diag
                    for di, dj, dk in (
                        (1, 0, 0), (-1, 0, 0), (0, 1, 0),
                        (0, -1, 0), (0, 0, 1), (0, 0, -1),
                    ):
                        ni, nj, nk = i + di, j + dj, k + dk
                        if 0 <= ni < shape[0] and 0 <= nj < shape[1] and 0 <= nk < shape[2]:
                            dense[row, idx[ni, nj, nk]] = -offdiag
        u = rng.standard_normal(shape)
        np.testing.assert_allclose(
            apply_operator(u, diag, offdiag).ravel(), dense @ u.ravel()
        )

    def test_requires_3d(self):
        with pytest.raises(ConfigurationError):
            apply_operator(np.ones((3, 3)), 2.0, 0.1)


class TestSweep:
    def test_omega_range_enforced(self):
        diag, offdiag, shape = dominant()
        u = np.zeros(shape)
        with pytest.raises(ConfigurationError):
            ssor_sweep(u, u.copy(), diag, offdiag, omega=2.5, lower=True)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ssor_sweep(
                np.zeros((3, 3, 3)), np.zeros((3, 3, 4)), 7.0, 1.0, 1.0, True
            )

    def test_gauss_seidel_exact_on_diagonal_system(self):
        """With offdiag=0 and omega=1 one sweep solves exactly."""
        rng = np.random.default_rng(4)
        rhs = rng.standard_normal((4, 4, 4))
        u = np.zeros_like(rhs)
        ssor_sweep(u, rhs, diag=3.0, offdiag=0.0, omega=1.0, lower=True)
        np.testing.assert_allclose(u, rhs / 3.0)


class TestSolve:
    def test_converges_to_true_solution(self):
        diag, offdiag, shape = dominant()
        rng = np.random.default_rng(5)
        x_true = rng.standard_normal(shape)
        rhs = apply_operator(x_true, diag, offdiag)
        u, history = ssor_solve(rhs, diag, offdiag, omega=1.1, iterations=40)
        np.testing.assert_allclose(u, x_true, rtol=1e-6, atol=1e-8)
        assert history[-1] < 1e-6 * history[0]

    def test_residual_monotone_decreasing(self):
        diag, offdiag, shape = dominant()
        rng = np.random.default_rng(6)
        rhs = rng.standard_normal(shape)
        _, history = ssor_solve(rhs, diag, offdiag, omega=1.0, iterations=15)
        assert all(b <= a for a, b in zip(history, history[1:]))

    def test_omega_one_is_symmetric_gauss_seidel(self):
        diag, offdiag, shape = dominant()
        rhs = np.ones(shape)
        u, history = ssor_solve(rhs, diag, offdiag, omega=1.0, iterations=10)
        assert history[-1] < history[0]

    def test_initial_guess_respected(self):
        diag, offdiag, shape = dominant()
        rng = np.random.default_rng(7)
        x_true = rng.standard_normal(shape)
        rhs = apply_operator(x_true, diag, offdiag)
        # Starting at the solution: residual immediately ~0.
        _, history = ssor_solve(
            rhs, diag, offdiag, omega=1.0, iterations=1, u0=x_true
        )
        assert history[0] < 1e-8

    def test_dominance_required(self):
        with pytest.raises(ConfigurationError, match="dominant"):
            ssor_solve(np.ones((3, 3, 3)), diag=5.0, offdiag=1.0)

    def test_iterations_validated(self):
        with pytest.raises(ConfigurationError):
            ssor_solve(np.ones((3, 3, 3)), 7.0, 1.0, iterations=0)
