"""Line solvers vs SciPy and analytic references."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.npb.numerics.tridiag import (
    solve_block_tridiagonal,
    solve_lines_along_axis,
    solve_pentadiagonal,
    solve_tridiagonal,
)


def random_tridiagonal(n, rng):
    lower = rng.standard_normal(n)
    upper = rng.standard_normal(n)
    diag = 4.0 + np.abs(rng.standard_normal(n))  # diagonally dominant
    lower[0] = 0.0
    upper[-1] = 0.0
    return lower, diag, upper


def dense_from_tridiagonal(lower, diag, upper):
    n = len(diag)
    full = np.diag(diag)
    for i in range(1, n):
        full[i, i - 1] = lower[i]
        full[i - 1, i] = upper[i - 1]
    return full


class TestTridiagonal:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
    def test_matches_dense_solve(self, n):
        rng = np.random.default_rng(n)
        lower, diag, upper = random_tridiagonal(n, rng)
        x_true = rng.standard_normal(n)
        rhs = dense_from_tridiagonal(lower, diag, upper) @ x_true
        x = solve_tridiagonal(lower, diag, upper, rhs)
        np.testing.assert_allclose(x, x_true, rtol=1e-10)

    def test_vectorized_trailing_dims(self):
        rng = np.random.default_rng(0)
        n, m = 20, 7
        lower, diag, upper = random_tridiagonal(n, rng)
        full = dense_from_tridiagonal(lower, diag, upper)
        x_true = rng.standard_normal((n, m))
        rhs = full @ x_true
        x = solve_tridiagonal(lower, diag, upper, rhs)
        np.testing.assert_allclose(x, x_true, rtol=1e-10)

    def test_empty_rejected(self):
        z = np.zeros(0)
        with pytest.raises(ConfigurationError):
            solve_tridiagonal(z, z, z, z)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_tridiagonal(np.zeros(3), np.ones(4), np.zeros(4), np.ones(4))

    def test_zero_pivot_rejected(self):
        n = 3
        with pytest.raises(ConfigurationError, match="pivot"):
            solve_tridiagonal(
                np.zeros(n), np.zeros(n), np.zeros(n), np.ones(n)
            )

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 30), seed=st.integers(0, 10_000))
    def test_residual_property(self, n, seed):
        """Solver output must satisfy A x = b for any dominant system."""
        rng = np.random.default_rng(seed)
        lower, diag, upper = random_tridiagonal(n, rng)
        rhs = rng.standard_normal(n)
        x = solve_tridiagonal(lower, diag, upper, rhs)
        full = dense_from_tridiagonal(lower, diag, upper)
        np.testing.assert_allclose(full @ x, rhs, rtol=1e-8, atol=1e-10)


class TestBlockTridiagonal:
    def block_system(self, n, b, rng):
        lower = rng.standard_normal((n, b, b)) * 0.2
        upper = rng.standard_normal((n, b, b)) * 0.2
        diag = rng.standard_normal((n, b, b)) * 0.2 + np.eye(b) * (2 * b)
        lower[0] = 0.0
        upper[-1] = 0.0
        return lower, diag, upper

    def dense(self, lower, diag, upper):
        n, b, _ = diag.shape
        full = np.zeros((n * b, n * b))
        for i in range(n):
            full[i * b:(i + 1) * b, i * b:(i + 1) * b] = diag[i]
            if i > 0:
                full[i * b:(i + 1) * b, (i - 1) * b:i * b] = lower[i]
                full[(i - 1) * b:i * b, i * b:(i + 1) * b] = upper[i - 1]
        return full

    @pytest.mark.parametrize("n,b", [(1, 5), (3, 5), (12, 5), (8, 3)])
    def test_matches_dense_solve(self, n, b):
        """BT's 5x5 block systems (and other block sizes) solve exactly."""
        rng = np.random.default_rng(n * 100 + b)
        lower, diag, upper = self.block_system(n, b, rng)
        x_true = rng.standard_normal((n, b))
        rhs_dense = self.dense(lower, diag, upper) @ x_true.ravel()
        x = solve_block_tridiagonal(lower, diag, upper, rhs_dense.reshape(n, b))
        np.testing.assert_allclose(x, x_true, rtol=1e-9)

    def test_non_square_blocks_rejected(self):
        with pytest.raises(ConfigurationError, match="square"):
            solve_block_tridiagonal(
                np.zeros((2, 3, 4)), np.zeros((2, 3, 4)),
                np.zeros((2, 3, 4)), np.zeros((2, 3)),
            )

    def test_rhs_shape_checked(self):
        n, b = 3, 5
        blocks = np.tile(np.eye(b), (n, 1, 1))
        with pytest.raises(ConfigurationError, match="rhs"):
            solve_block_tridiagonal(blocks, blocks, blocks, np.zeros((n, 2)))


class TestPentadiagonal:
    def banded(self, n, rng):
        bands = np.zeros((5, n))
        bands[0, 2:] = rng.standard_normal(n - 2) * 0.3
        bands[1, 1:] = rng.standard_normal(n - 1)
        bands[2, :] = 8.0 + np.abs(rng.standard_normal(n))
        bands[3, : n - 1] = rng.standard_normal(n - 1)
        bands[4, : n - 2] = rng.standard_normal(n - 2) * 0.3
        return bands

    @pytest.mark.parametrize("n", [3, 5, 12, 36, 100])
    def test_matches_scipy_banded(self, n):
        """SP's scalar pentadiagonal lines vs scipy.linalg.solve_banded."""
        rng = np.random.default_rng(n)
        bands = self.banded(n, rng)
        rhs = rng.standard_normal(n)
        ours = solve_pentadiagonal(bands, rhs)
        scipys = scipy.linalg.solve_banded((2, 2), bands, rhs)
        np.testing.assert_allclose(ours, scipys, rtol=1e-9)

    def test_bad_band_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_pentadiagonal(np.zeros((3, 10)), np.zeros(10))

    def test_rhs_length_checked(self):
        with pytest.raises(ConfigurationError):
            solve_pentadiagonal(np.ones((5, 10)), np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(3, 40), seed=st.integers(0, 10_000))
    def test_scipy_agreement_property(self, n, seed):
        rng = np.random.default_rng(seed)
        bands = self.banded(n, rng)
        rhs = rng.standard_normal(n)
        np.testing.assert_allclose(
            solve_pentadiagonal(bands, rhs),
            scipy.linalg.solve_banded((2, 2), bands, rhs),
            rtol=1e-8,
            atol=1e-10,
        )


class TestLineSweeps:
    def test_identity_system_returns_field(self):
        rng = np.random.default_rng(1)
        field = rng.standard_normal((4, 5, 6))
        out = solve_lines_along_axis(field, 0, 0.0, 1.0, 0.0)
        np.testing.assert_allclose(out, field)

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_each_axis_solves_its_lines(self, axis):
        rng = np.random.default_rng(2)
        shape = (5, 6, 7)
        x_true = rng.standard_normal(shape)
        lower, diag, upper = -0.5, 3.0, -0.25
        # Build rhs by applying the tridiagonal operator along `axis`.
        moved = np.moveaxis(x_true, axis, 0)
        rhs = diag * moved.copy()
        rhs[1:] += lower * moved[:-1]
        rhs[:-1] += upper * moved[1:]
        rhs = np.moveaxis(rhs, 0, axis)
        out = solve_lines_along_axis(rhs, axis, lower, diag, upper)
        np.testing.assert_allclose(out, x_true, rtol=1e-10)
