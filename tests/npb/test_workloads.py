"""Workload constants: consistency with published NPB operation counts."""

import pytest

from repro.npb import make_benchmark, workloads as w
from repro.npb.classes import problem_size


def loop_flops_per_point(table, loop_kernels):
    return sum(table[k] for k in loop_kernels)


class TestPublishedTotals:
    """Total flop counts must land near the published NPB numbers."""

    def test_bt_class_a_total(self):
        # Published: BT class A ~ 168 Gflop over 200 iterations.
        size = problem_size("BT", "A")
        per_iter = loop_flops_per_point(
            w.BT_FLOPS_PER_POINT,
            ("COPY_FACES", "X_SOLVE", "Y_SOLVE", "Z_SOLVE", "ADD"),
        )
        total = per_iter * size.points * size.iterations
        assert total == pytest.approx(168e9, rel=0.1)

    def test_sp_class_a_total(self):
        # Published: SP class A ~ 102 Gflop over 400 iterations.
        size = problem_size("SP", "A")
        per_iter = loop_flops_per_point(
            w.SP_FLOPS_PER_POINT,
            ("COPY_FACES", "TXINVR", "X_SOLVE", "Y_SOLVE", "Z_SOLVE", "ADD"),
        )
        total = per_iter * size.points * size.iterations
        assert total == pytest.approx(102e9, rel=0.1)

    def test_lu_class_a_total(self):
        # Published: LU class A ~ 119 Gflop over 250 iterations.
        size = problem_size("LU", "A")
        per_iter = loop_flops_per_point(
            w.LU_FLOPS_PER_POINT,
            ("SSOR_ITER", "SSOR_LT", "SSOR_UT", "SSOR_RS"),
        )
        total = per_iter * size.points * size.iterations
        assert total == pytest.approx(119e9, rel=0.1)


class TestStructuralConsistency:
    @pytest.mark.parametrize(
        "name,cls", [("BT", "S"), ("SP", "W"), ("LU", "S")]
    )
    def test_every_kernel_has_flop_count(self, name, cls):
        bench = make_benchmark(name, cls, 4)
        table = {
            "BT": w.BT_FLOPS_PER_POINT,
            "SP": w.SP_FLOPS_PER_POINT,
            "LU": w.LU_FLOPS_PER_POINT,
        }[name]
        for kernel in bench.kernel_names():
            assert kernel in table
            assert table[kernel] > 0

    def test_solver_scratch_dominates_bt_footprint(self):
        # BT's lhs (3 x 5x5 blocks/point) dwarfs the state vectors —
        # what makes the solve kernels memory-bound.
        assert w.BT_FIELD_BYTES["lhs"] > 5 * w.BT_FIELD_BYTES["u"]

    def test_sp_lighter_than_bt_per_point(self):
        bt = loop_flops_per_point(
            w.BT_FLOPS_PER_POINT,
            ("COPY_FACES", "X_SOLVE", "Y_SOLVE", "Z_SOLVE", "ADD"),
        )
        sp = loop_flops_per_point(
            w.SP_FLOPS_PER_POINT,
            ("COPY_FACES", "TXINVR", "X_SOLVE", "Y_SOLVE", "Z_SOLVE", "ADD"),
        )
        assert sp < bt / 2  # scalar vs 5x5 block systems

    def test_lu_pipeline_message_is_five_words(self):
        assert w.LU_PIPELINE_MESSAGE_BYTES == 40  # "five words each"
