"""Exporters: Prometheus text, JSON snapshots, Chrome trace documents."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    chrome_trace,
    collapsed_spans,
    to_json,
    to_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracing import Span
from repro.obs.registry import MetricsRegistry
from repro.simmachine.trace import Trace


def _populated_registry(namespace=""):
    reg = MetricsRegistry(namespace=namespace)
    reg.counter("requests").inc(3)
    reg.gauge("queue_depth").set(2)
    reg.histogram("latency_seconds").observe(0.5)
    return reg


class TestPrometheus:
    def test_conventions(self):
        text = to_prometheus(_populated_registry("service"))
        assert "# TYPE service_requests_total counter" in text
        assert "service_requests_total 3" in text
        assert "service_queue_depth 2" in text
        assert "service_queue_depth_high_water 2" in text
        assert "# TYPE service_latency_seconds histogram" in text
        assert 'service_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "service_latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_labels_and_escaping(self):
        reg = MetricsRegistry()
        reg.histogram("span_seconds", labels={"name": 'he said "hi"'}).observe(1.0)
        text = to_prometheus(reg)
        assert 'name="he said \\"hi\\""' in text

    def test_merges_multiple_registries(self):
        text = to_prometheus(_populated_registry("service"), _populated_registry())
        assert "service_requests_total 3" in text
        assert "\nrequests_total 3" in text


class TestJson:
    def test_namespace_prefixes_keys(self):
        merged = to_json(_populated_registry("service"), _populated_registry())
        assert merged["service.requests"] == 3
        assert merged["requests"] == 3
        json.dumps(merged)  # must be serializable as-is


class TestCollapsedSpans:
    @staticmethod
    def _span(name, span_id, parent_id, start, end):
        return Span(
            name=name,
            trace_id="t1",
            span_id=span_id,
            parent_id=parent_id,
            start=start,
            end=end,
        )

    def test_self_time_weights_sum_to_wall_time(self):
        spans = [
            self._span("root", "s1", None, 0.0, 1.0),
            self._span("child", "s2", "s1", 0.1, 0.5),
            self._span("child", "s3", "s1", 0.6, 0.9),
        ]
        text = collapsed_spans(spans)
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        # root's self time excludes both child slices; children merge
        # into one stack line. Everything sums back to the root's 1s.
        assert int(lines["root"]) == pytest.approx(300_000)
        assert int(lines["root;child"]) == pytest.approx(700_000)
        assert sum(int(v) for v in lines.values()) == pytest.approx(
            1_000_000
        )

    def test_orphan_parent_and_empty_input(self):
        assert collapsed_spans([]) == ""
        orphan = self._span("leaf", "s9", "missing", 0.0, 0.25)
        assert collapsed_spans([orphan]) == "leaf 250000\n"

    def test_real_spans_round_trip(self):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        text = collapsed_spans(obs.get_tracer().spans())
        assert "outer;inner" in text


class TestChromeTrace:
    def test_spans_become_complete_slices(self):
        with obs.span("outer", benchmark="BT"):
            with obs.span("inner"):
                pass
        document = chrome_trace(spans=obs.get_tracer().spans())
        validate_chrome_trace(document)
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        assert all(e["pid"] == 1 for e in slices)
        outer = next(e for e in slices if e["name"] == "outer")
        assert outer["args"]["benchmark"] == "BT"

    def test_simulator_trace_maps_ranks_to_threads(self):
        trace = Trace()
        trace.add(0.0, 0, "copy_faces", "phase")
        trace.add(1.0, 0, "copy_faces", "send")
        trace.add(2.0, 0, "x_solve", "phase")
        trace.add(0.5, 1, "copy_faces", "phase")
        document = chrome_trace(machine_trace=trace)
        validate_chrome_trace(document)
        events = document["traceEvents"]
        sim = [e for e in events if e["pid"] == 2 and e["ph"] != "M"]
        assert {e["tid"] for e in sim} == {0, 1}
        phase = next(e for e in sim if e["name"] == "copy_faces" and e["tid"] == 0)
        assert phase["ph"] == "X"
        assert phase["dur"] == pytest.approx(2.0 / 1e-6)  # until next phase
        instants = [e for e in sim if e["ph"] == "i"]
        assert instants and instants[0]["name"] == "copy_faces.send"

    def test_write_round_trips_through_disk(self, tmp_path):
        with obs.span("stage"):
            pass
        path = tmp_path / "timeline.json"
        document = write_chrome_trace(str(path), spans=obs.get_tracer().spans())
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(document))
        validate_chrome_trace(loaded)

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
            )  # missing name
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "ts": -1, "pid": 1, "tid": 1, "name": "x",
                         "dur": 0}
                    ]
                }
            )  # negative timestamp
