"""The perf ledger: schema, persistence, regression gate, migration."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    PerfLedger,
    check_entries,
    host_fingerprint,
    make_entry,
    migrate_legacy,
)


def _entry(value, series="engine", host=None, name="events_per_sec", **kw):
    return make_entry(
        series=series,
        metrics={
            name: {"value": value, "unit": "1/s", "direction": "higher"}
        },
        timestamp=1_000.0,
        host=host,
        **kw,
    )


class TestEntrySchema:
    def test_make_entry_shape(self):
        entry = _entry(100.0, commit="abc123", samples=5, meta={"n": 2})
        assert entry["series"] == "engine"
        assert entry["commit"] == "abc123"
        assert entry["samples"] == 5
        assert entry["meta"] == {"n": 2}
        assert entry["metrics"]["events_per_sec"]["direction"] == "higher"
        assert entry["host"] == host_fingerprint()

    def test_validation(self):
        with pytest.raises(ReproError):
            make_entry("", {"m": {"value": 1}}, timestamp=0.0)
        with pytest.raises(ReproError):
            make_entry("s", {}, timestamp=0.0)
        with pytest.raises(ReproError):
            make_entry("s", {"m": {"unit": "s"}}, timestamp=0.0)
        with pytest.raises(ReproError):
            make_entry(
                "s", {"m": {"value": 1, "direction": "up"}}, timestamp=0.0
            )

    def test_direction_defaults_to_lower(self):
        entry = make_entry("s", {"m": {"value": 1.0}}, timestamp=0.0)
        assert entry["metrics"]["m"]["direction"] == "lower"


class TestPersistence:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "PERF_LEDGER.json"
        ledger = PerfLedger(path)
        ledger.append(_entry(100.0))
        ledger.append(_entry(5.0, series="campaign", name="serial_seconds"))
        reloaded = PerfLedger(path)
        assert len(reloaded) == 2
        assert reloaded.series_names() == ["engine", "campaign"]
        assert reloaded.series("engine")[0]["metrics"][
            "events_per_sec"
        ]["value"] == pytest.approx(100.0)
        document = json.loads(path.read_text())
        assert document["schema"] == LEDGER_SCHEMA

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "PERF_LEDGER.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ReproError):
            PerfLedger(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert len(PerfLedger(tmp_path / "nope.json")) == 0


class TestRegressionGate:
    def test_cold_below_min_history(self):
        findings = check_entries(
            [_entry(100.0), _entry(101.0)], min_history=3
        )
        assert [f.status for f in findings] == ["cold"]
        assert not findings[0].is_regression

    def test_stable_history_is_ok(self):
        entries = [_entry(v) for v in (100.0, 102.0, 99.0, 101.0, 100.5)]
        findings = check_entries(entries, min_history=3)
        assert [f.status for f in findings] == ["ok"]
        assert findings[0].history == 4

    def test_injected_regression_detected(self):
        # "higher is better" metric collapses by 40 % → regression.
        entries = [_entry(v) for v in (100.0, 102.0, 99.0, 101.0)]
        entries.append(_entry(60.0))
        findings = check_entries(entries, min_history=3)
        assert [f.status for f in findings] == ["regression"]
        assert findings[0].ratio < 0.7

    def test_lower_is_better_direction(self):
        def seconds(value):
            return make_entry(
                "campaign",
                {"serial_seconds": {"value": value, "direction": "lower"}},
                timestamp=0.0,
            )

        worse = [seconds(v) for v in (1.0, 1.02, 0.98, 1.01)] + [
            seconds(1.6)
        ]
        assert check_entries(worse)[0].status == "regression"
        better = worse[:-1] + [seconds(0.5)]
        assert check_entries(better)[0].status == "improved"

    def test_noise_widens_tolerance(self):
        # Noisy history (MAD ~15) must tolerate a value that a tight
        # relative floor alone would flag.
        noisy = [_entry(v) for v in (100.0, 130.0, 85.0, 115.0, 70.0)]
        noisy.append(_entry(80.0))
        assert check_entries(noisy)[0].status == "ok"

    def test_other_host_history_does_not_count(self):
        other = dict(host_fingerprint(), cpus=999)
        entries = [_entry(100.0, host=other) for _ in range(5)]
        entries.append(_entry(50.0))
        findings = check_entries(entries, min_history=3)
        assert [f.status for f in findings] == ["cold"]

    def test_multiple_series_judged_independently(self):
        entries = [_entry(v) for v in (100.0, 101.0, 99.0, 100.0, 55.0)]
        entries += [
            _entry(v, series="tiers", name="speedup")
            for v in (10.0, 10.1, 9.9, 10.0, 10.2)
        ]
        by_series = {
            f.metric.series: f.status for f in check_entries(entries)
        }
        assert by_series == {"engine": "regression", "tiers": "ok"}


class TestMigration:
    def _write_legacy(self, root):
        (root / "BENCH_engine.json").write_text(
            json.dumps(
                {
                    "current_events_per_sec": {"message_like": 690000.0},
                    "speedup": {"message_like": 1.6},
                }
            )
        )
        (root / "BENCH_campaign.json").write_text(
            json.dumps(
                {
                    "serial_seconds": 0.77,
                    "parallel_warm_seconds": 0.05,
                    "warm_speedup": 14.0,
                    "cpu_count": 4,
                }
            )
        )
        (root / "BENCH_tiers.json").write_text(
            json.dumps(
                {
                    "golden_cells": [
                        {
                            "benchmark": "BT",
                            "problem_class": "A",
                            "nprocs": 16,
                            "speedup": 141.5,
                            "expected_rel_error": 0.0872,
                        }
                    ]
                }
            )
        )

    def test_migrates_all_three_without_losing_history(self, tmp_path):
        self._write_legacy(tmp_path)
        ledger = PerfLedger(tmp_path / "PERF_LEDGER.json")
        migrated = migrate_legacy(ledger, tmp_path, timestamp=123.0)
        assert sorted(migrated) == ["campaign", "engine", "tiers"]
        engine = ledger.series("engine")[0]
        assert engine["metrics"]["message_like.events_per_sec"][
            "value"
        ] == pytest.approx(690000.0)
        assert engine["meta"]["migrated_from"] == "BENCH_engine.json"
        # The original document is preserved verbatim.
        assert engine["meta"]["legacy"]["speedup"] == {
            "message_like": 1.6
        }
        tiers = ledger.series("tiers")[0]
        assert "BT.A.16.analytic_speedup" in tiers["metrics"]
        assert (
            tiers["metrics"]["BT.A.16.expected_rel_error"]["direction"]
            == "lower"
        )

    def test_migration_is_idempotent(self, tmp_path):
        self._write_legacy(tmp_path)
        ledger = PerfLedger(tmp_path / "PERF_LEDGER.json")
        assert len(migrate_legacy(ledger, tmp_path, timestamp=1.0)) == 3
        assert migrate_legacy(ledger, tmp_path, timestamp=2.0) == []
        assert len(ledger) == 3

    def test_real_repo_snapshots_migrate(self, tmp_path):
        # The actual BENCH files checked into the repo must convert.
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        if not (repo_root / "BENCH_engine.json").exists():
            pytest.skip("legacy snapshots absent")
        ledger = PerfLedger(tmp_path / "PERF_LEDGER.json")
        migrated = migrate_legacy(ledger, repo_root, timestamp=0.0)
        assert "engine" in migrated
        for entry in ledger.entries:
            assert entry["metrics"], entry["series"]
