"""Structured log lines and their correlation/span stamping."""

import logging

from repro import obs


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.lines = []

    def emit(self, record):
        self.lines.append(record.getMessage())


def _capturing():
    handler = _Capture()
    logger = obs.get_logger()
    logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    return handler, logger


class TestLog:
    def test_event_and_fields(self):
        handler, logger = _capturing()
        try:
            obs.log("cache.evict", key="BT/S/4", reason="ttl expired")
        finally:
            logger.removeHandler(handler)
        (line,) = handler.lines
        assert line.startswith("cache.evict ")
        assert "key=BT/S/4" in line
        assert 'reason="ttl expired"' in line  # spaces force quoting

    def test_correlation_and_span_stamping(self):
        handler, logger = _capturing()
        try:
            with obs.correlation("req-7"), obs.span("stage") as current:
                obs.log("stage.done")
        finally:
            logger.removeHandler(handler)
        (line,) = handler.lines
        assert "corr=req-7" in line
        assert f"trace={current.trace_id}" in line
        assert f"span={current.span_id}" in line

    def test_disabled_logging_is_silent(self):
        handler, logger = _capturing()
        obs.disable()
        try:
            obs.log("should.not.appear")
        finally:
            obs.enable()
            logger.removeHandler(handler)
        assert handler.lines == []
