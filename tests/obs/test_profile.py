"""The sampling profiler: backends, attribution, merging, exports."""

import threading
import time

import pytest

from repro import obs
from repro.obs import profile
from repro.obs.profile import ProfileData, SamplingProfiler


def _burn(seconds: float) -> int:
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += sum(range(100))
    return acc


class TestProfileData:
    def test_record_and_self_cumulative(self):
        data = ProfileData(interval=0.01)
        data.record(("a", "b"), (), 0.0, 1)
        data.record(("a", "b"), (), 0.01, 1)
        data.record(("a", "c"), (), 0.02, 1)
        assert data.sample_count == 3
        assert data.self_seconds() == pytest.approx(
            {"b": 0.02, "c": 0.01}
        )
        # "a" is on every stack: cumulative == whole profile.
        assert data.cumulative_seconds()["a"] == pytest.approx(0.03)

    def test_recursion_counts_once_in_cumulative(self):
        data = ProfileData(interval=0.01)
        data.record(("f", "f", "f"), (), 0.0, 1)
        assert data.cumulative_seconds()["f"] == pytest.approx(0.01)

    def test_collapsed_format(self):
        data = ProfileData(interval=0.005)
        data.record(("main", "solve"), ("sweep",), 0.0, 1)
        data.record(("main", "solve"), ("sweep",), 0.0, 1)
        data.record(("main",), (), 0.0, 1)
        assert data.collapsed() == "main 1\nmain;solve 2\n"
        assert data.collapsed("spans") == "sweep 2\n"
        with pytest.raises(ValueError):
            data.collapsed("nope")

    def test_merge_adds_counts(self):
        a = ProfileData(interval=0.01)
        a.record(("x",), ("s",), 0.0, 1)
        b = ProfileData(interval=0.01)
        b.record(("x",), ("s",), 0.0, 2)
        b.record(("y",), (), 0.0, 2)
        b.duration = 3.0
        a.merge(b)
        assert a.samples == {("x",): 2, ("y",): 1}
        assert a.span_samples == {("s",): 2}
        assert a.sample_count == 3
        assert a.duration == 3.0

    def test_stack_cap_folds_into_truncated(self):
        data = ProfileData(interval=0.01)
        data.record(("a",), (), 0.0, 1, max_stacks=1)
        data.record(("b",), (), 0.0, 1, max_stacks=1)
        assert data.samples == {("a",): 1, (profile.TRUNCATED,): 1}
        assert data.truncated == 1

    def test_dict_round_trip(self):
        data = ProfileData(interval=0.002)
        data.record(("m", "f"), ("span.a",), 0.0, 1)
        data.duration = 1.5
        restored = ProfileData.from_dict(data.to_dict())
        assert restored.samples == data.samples
        assert restored.span_samples == data.span_samples
        assert restored.interval == data.interval
        assert restored.duration == data.duration
        with pytest.raises(ValueError):
            ProfileData.from_dict({"schema": 999})

    def test_chrome_trace_validates(self):
        data = ProfileData(interval=0.005)
        data.record(("m", "f"), (), 0.01, 1)
        data.record(("m", "g"), (), 0.02, 2)
        document = data.chrome_trace()
        obs.validate_chrome_trace(document)
        slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"f", "g"}
        assert {e["tid"] for e in slices} == {1, 2}


class TestSamplingProfiler:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(backend="magic")

    def test_thread_backend_samples_other_threads(self):
        done = threading.Event()

        def busy():
            while not done.is_set():
                sum(range(200))

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        try:
            with SamplingProfiler(
                interval=0.002, backend="thread"
            ) as profiler:
                time.sleep(0.15)
        finally:
            done.set()
            worker.join()
        data = profiler.data
        assert data.sample_count > 0
        assert data.duration > 0.1
        assert any("busy" in label for label in data.cumulative_seconds())

    def test_signal_backend_on_main_thread(self):
        profiler = SamplingProfiler(interval=0.002, backend="signal")
        with profiler:
            _burn(0.2)
        assert profiler.backend == "signal"
        assert profiler.data.sample_count > 0
        assert any(
            "_burn" in label
            for label in profiler.data.cumulative_seconds()
        )

    def test_signal_backend_refused_off_main_thread(self):
        errors = []

        def attempt():
            try:
                SamplingProfiler(backend="signal").start()
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=attempt)
        t.start()
        t.join()
        assert len(errors) == 1

    def test_auto_backend_falls_back_off_main_thread(self):
        backends = []

        def attempt():
            profiler = SamplingProfiler(backend="auto").start()
            backends.append(profiler.backend)
            profiler.stop()

        t = threading.Thread(target=attempt)
        t.start()
        t.join()
        assert backends == ["thread"]

    def test_single_profiler_per_process(self):
        with SamplingProfiler(backend="thread"):
            with pytest.raises(RuntimeError):
                SamplingProfiler(backend="thread").start()
        assert profile.active() is None

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(backend="thread").start()
        first = profiler.stop()
        assert profiler.stop() is first

    def test_span_attribution(self):
        with SamplingProfiler(
            interval=0.002, backend="signal"
        ) as profiler:
            with obs.span("outer.stage"):
                with obs.span("inner.stage"):
                    _burn(0.2)
        spans = profiler.data.span_samples
        assert ("outer.stage", "inner.stage") in spans
        assert profiler.data.span_seconds()["inner.stage"] > 0

    def test_tag_attribution_and_disabled_noop(self):
        # Without a profiler, tag() must be a no-op...
        with obs.tag("free"):
            pass
        with SamplingProfiler(
            interval=0.002, backend="signal"
        ) as profiler:
            with obs.tag("hot.region"):
                _burn(0.2)
        assert profiler.data.span_seconds().get("hot.region", 0) > 0


class TestModuleApi:
    def test_start_stop_roundtrip(self):
        profiler = profile.start(interval=0.002, backend="thread")
        assert profile.active() is profiler
        assert profile.worker_interval() == pytest.approx(0.002)
        data = profile.stop()
        assert data is profiler.data
        assert profile.active() is None
        assert profile.stop() is None
        assert profile.worker_interval() is None

    def test_merge_child_profile(self):
        child = ProfileData(interval=0.004)
        child.record(("worker", "cell"), ("parallel.cell",), 0.0, 9)
        # No active profiler: nothing to merge into.
        assert not profile.merge_child_profile(child.to_dict())
        with SamplingProfiler(
            interval=0.004, backend="thread"
        ) as parent:
            assert profile.merge_child_profile(child.to_dict())
            assert not profile.merge_child_profile(None)
        assert parent.data.samples[("worker", "cell")] == 1
        assert parent.data.span_samples[("parallel.cell",)] == 1
