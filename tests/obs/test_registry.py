"""The metrics registry: instrument identity, labels, snapshots."""

import random
import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
    quantile_from_counts,
)


class TestDefaultBuckets:
    def test_geometric_and_increasing(self):
        bounds = default_buckets(low=1.0, high=1000.0, per_decade=2)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        # Growth factor is 10**(1/per_decade).
        assert bounds[1] / bounds[0] == pytest.approx(10 ** 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            default_buckets(low=0.0)
        with pytest.raises(ValueError):
            default_buckets(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            default_buckets(per_decade=0)


class TestRegistryIdentity:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 3

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.histogram("span_seconds", labels={"name": "a"})
        b = reg.histogram("span_seconds", labels={"name": "b"})
        assert a is not b
        # kwarg spelling (for label keys that don't shadow parameters):
        assert reg.counter("hits", tier="l1") is reg.counter(
            "hits", labels={"tier": "l1"}
        )

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_concurrent_get_or_create_is_safe(self):
        reg = MetricsRegistry()
        seen = []

        def worker():
            c = reg.counter("shared")
            c.inc(10)
            seen.append(c)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
        assert reg.counter("shared").value == 80


class TestQuantile:
    """Histogram.quantile: log-bucket interpolation vs known distributions."""

    def test_empty_histogram_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_rejects_out_of_range(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            quantile_from_counts((1.0,), (1, 0), 2.0)

    def test_extremes_clamp_to_observed_min_max(self):
        h = Histogram("h")
        for value in (0.003, 0.017, 0.4, 2.5):
            h.observe(value)
        assert h.quantile(0.0) == pytest.approx(0.003)
        assert h.quantile(1.0) == pytest.approx(2.5)

    def test_geometric_interpolation_within_bucket(self):
        # Hand-built layout: bounds (1, 10), counts for (-inf,1], (1,10],
        # (10, inf) — ten samples all inside the (1, 10] bucket.
        bounds, counts = (1.0, 10.0), (0, 10, 0)
        # Halfway through the bucket in rank must be halfway in log space.
        assert quantile_from_counts(bounds, counts, 0.5) == pytest.approx(
            10**0.5
        )
        assert quantile_from_counts(bounds, counts, 1.0) == pytest.approx(
            10.0
        )

    def test_uniform_distribution_accuracy(self):
        # ~12 buckets per decade: the interpolated estimate must land
        # within one bucket-width factor (10^(1/12) ≈ 1.21) of the truth.
        h = Histogram("h")
        values = [0.001 + 0.999 * i / 9999 for i in range(10000)]
        for value in values:
            h.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            true = values[int(q * (len(values) - 1))]
            assert true / 1.25 <= h.quantile(q) <= true * 1.25

    def test_lognormal_distribution_accuracy(self):
        rng = random.Random(42)
        h = Histogram("h")
        values = sorted(rng.lognormvariate(0.0, 1.0) for _ in range(5000))
        for value in values:
            h.observe(value)
        for q in (0.5, 0.95, 0.99):
            true = values[int(q * (len(values) - 1))]
            assert true / 1.25 <= h.quantile(q) <= true * 1.25

    def test_monotone_in_q(self):
        rng = random.Random(7)
        h = Histogram("h")
        for _ in range(1000):
            h.observe(rng.expovariate(10.0))
        estimates = [h.quantile(q / 20) for q in range(21)]
        assert estimates == sorted(estimates)

    def test_state_snapshot_is_consistent(self):
        h = Histogram("h")
        for value in (0.01, 0.02, 0.04):
            h.observe(value)
        state = h.state()
        assert state["count"] == 3 == sum(state["counts"])
        assert state["min"] == pytest.approx(0.01)
        assert state["max"] == pytest.approx(0.04)
        # The raw state feeds the same estimator as quantile().
        assert quantile_from_counts(
            state["bounds"], state["counts"], 0.5, state["min"], state["max"]
        ) == h.quantile(0.5)


class TestSnapshot:
    def test_shapes_per_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(5)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1
        assert snap["g.high_water"] == 5
        assert snap["h"]["count"] == 1
        assert isinstance(Counter("c"), Counter)  # re-exported types
        assert isinstance(Gauge("g"), Gauge)
        assert isinstance(Histogram("h"), Histogram)

    def test_labelled_keys_render_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"tier": "l1"}).inc()
        assert "hits{tier=l1}" in reg.snapshot()

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0
