"""The metrics registry: instrument identity, labels, snapshots."""

import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_buckets,
)


class TestDefaultBuckets:
    def test_geometric_and_increasing(self):
        bounds = default_buckets(low=1.0, high=1000.0, per_decade=2)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))
        # Growth factor is 10**(1/per_decade).
        assert bounds[1] / bounds[0] == pytest.approx(10 ** 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            default_buckets(low=0.0)
        with pytest.raises(ValueError):
            default_buckets(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            default_buckets(per_decade=0)


class TestRegistryIdentity:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 3

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        a = reg.histogram("span_seconds", labels={"name": "a"})
        b = reg.histogram("span_seconds", labels={"name": "b"})
        assert a is not b
        # kwarg spelling (for label keys that don't shadow parameters):
        assert reg.counter("hits", tier="l1") is reg.counter(
            "hits", labels={"tier": "l1"}
        )

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_concurrent_get_or_create_is_safe(self):
        reg = MetricsRegistry()
        seen = []

        def worker():
            c = reg.counter("shared")
            c.inc(10)
            seen.append(c)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1
        assert reg.counter("shared").value == 80


class TestSnapshot:
    def test_shapes_per_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(5)
        reg.gauge("g").set(1)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1
        assert snap["g.high_water"] == 5
        assert snap["h"]["count"] == 1
        assert isinstance(Counter("c"), Counter)  # re-exported types
        assert isinstance(Gauge("g"), Gauge)
        assert isinstance(Histogram("h"), Histogram)

    def test_labelled_keys_render_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"tier": "l1"}).inc()
        assert "hits{tier=l1}" in reg.snapshot()

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0
