"""Spans: nesting, propagation, correlation, ring buffer, overhead switch."""

import threading

from repro import obs


class TestSpanNesting:
    def test_parent_child_share_a_trace(self):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        spans = obs.get_tracer().spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # finish order

    def test_siblings_get_fresh_traces(self):
        with obs.span("a") as a:
            pass
        with obs.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_span_records_duration_histogram(self):
        with obs.span("stage"):
            pass
        snap = obs.get_registry().snapshot()
        assert snap["span_seconds{name=stage}"]["count"] == 1

    def test_attrs_can_be_extended_inside(self):
        with obs.span("stage", fixed=1) as current:
            current.attrs["late"] = 2
        span = obs.get_tracer().spans()[0]
        assert span.attrs == {"fixed": 1, "late": 2}


class TestCorrelation:
    def test_root_span_adopts_correlation_id(self):
        with obs.correlation("req-42"):
            with obs.span("root") as root:
                assert root.trace_id == "req-42"

    def test_correlation_unbinds_on_exit(self):
        with obs.correlation("req-1"):
            assert obs.correlation_id() == "req-1"
        assert obs.correlation_id() is None


class TestCrossThreadPropagation:
    def test_use_context_joins_the_trace(self):
        captured = {}

        def worker(context):
            with obs.use_context(context):
                with obs.span("worker.stage") as child:
                    captured["trace"] = child.trace_id
                    captured["parent"] = child.parent_id

        with obs.span("submit") as parent:
            context = obs.current_context()
            t = threading.Thread(target=worker, args=(context,))
            t.start()
            t.join()
        assert captured["trace"] == parent.trace_id
        assert captured["parent"] == parent.span_id


class TestTracerRing:
    def test_bounded_with_drop_count(self):
        tracer = obs.Tracer(max_spans=2)
        for name in ("a", "b", "c"):
            with obs.span(name):
                pass
        # The global tracer received them; now exercise a bounded one
        # directly through record().
        for span in obs.get_tracer().spans():
            tracer.record(span)
        assert len(tracer) == 2
        assert tracer.dropped == 1
        assert [s.name for s in tracer.spans()] == ["b", "c"]


class TestDisableSwitch:
    def test_disabled_spans_are_noops(self):
        obs.disable()
        try:
            with obs.span("invisible") as nothing:
                assert nothing is None
        finally:
            obs.enable()
        assert len(obs.get_tracer()) == 0
        assert len(obs.get_registry()) == 0
