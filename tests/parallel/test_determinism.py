"""REP001 pays off: serial, parallel, and cached runs are bit-identical."""

from __future__ import annotations

import json

import pytest

from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.service import PredictRequest, PredictionService

SETTINGS = ExperimentSettings(
    measurement=MeasurementConfig(repetitions=3, warmup=1)
)
PROCS = [1, 4]
CHAINS = [2]


def sweep(**pipeline_kwargs):
    pipeline = ExperimentPipeline(SETTINGS, **pipeline_kwargs)
    return pipeline, pipeline.sweep("BT", "S", PROCS, chain_lengths=CHAINS)


def assert_identical(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert (a.benchmark, a.problem_class, a.nprocs) == (
            b.benchmark, b.problem_class, b.nprocs,
        )
        assert a.actual == b.actual
        assert a.summation == b.summation
        for length in CHAINS:
            assert a.coupling_prediction(length) == b.coupling_prediction(
                length
            )
        assert a.inputs == b.inputs
        assert a == b


class TestSerialVsParallel:
    def test_jobs4_matches_jobs1_bit_for_bit(self):
        _, serial = sweep(jobs=1)
        _, parallel = sweep(jobs=4)
        assert_identical(serial, parallel)

    def test_results_come_back_in_proc_count_order(self):
        _, parallel = sweep(jobs=4)
        assert [r.nprocs for r in parallel] == PROCS

    def test_parallel_merges_worker_counters(self):
        from repro import obs

        sweep(jobs=4)
        flushed = [
            c for c in obs.get_registry().collect() if c.name == "sim_events"
        ]
        assert flushed and all(c.value > 0 for c in flushed)


class TestColdVsWarmMemo:
    def test_cold_and_warm_runs_identical(self, tmp_path):
        cache = tmp_path / "memo"
        _, baseline = sweep()
        cold_pipeline, cold = sweep(memo=cache)
        warm_pipeline, warm = sweep(memo=cache)
        assert_identical(baseline, cold)
        assert_identical(cold, warm)
        assert warm_pipeline.memo.stats()["misses"] == 0
        assert warm_pipeline.memo.stats()["stores"] == 0
        assert warm_pipeline.memo.stats()["hits"] > 0

    def test_parallel_workers_share_the_memo(self, tmp_path):
        cache = tmp_path / "memo"
        _, cold = sweep(memo=cache, jobs=4)
        warm_pipeline, warm = sweep(memo=cache)
        assert_identical(cold, warm)
        assert warm_pipeline.memo.stats()["misses"] == 0

    def test_corrupted_entry_self_heals_without_changing_numbers(
        self, tmp_path
    ):
        cache = tmp_path / "memo"
        _, cold = sweep(memo=cache)
        entries = sorted(cache.glob("*/*.json"))
        assert entries
        victim = entries[0]
        wrapper = json.loads(victim.read_text(encoding="utf-8"))
        wrapper["payload"] = {"samples": [1e9], "overhead": 0.0}
        victim.write_text(json.dumps(wrapper), encoding="utf-8")
        healed_pipeline, healed = sweep(memo=cache)
        assert_identical(cold, healed)
        assert healed_pipeline.memo.stats()["corruptions"] == 1
        # The purged entry was re-simulated and re-stored intact.
        rerun_pipeline, rerun = sweep(memo=cache)
        assert_identical(cold, rerun)
        assert rerun_pipeline.memo.stats()["corruptions"] == 0


@pytest.mark.timeout(180)
class TestServingMemo:
    def test_warm_cache_dir_serves_without_simulating(self, tmp_path):
        cache = str(tmp_path / "memo")
        request = PredictRequest("BT", "S", 4)
        with PredictionService(
            measurement=MeasurementConfig(repetitions=3, warmup=1),
            cache_dir=cache,
        ) as service:
            first = service.predict(request, timeout=120)
            assert service.stats()["misses"] == 1
        with PredictionService(
            measurement=MeasurementConfig(repetitions=3, warmup=1),
            cache_dir=cache,
        ) as service:
            second = service.predict(request, timeout=120)
            stats = service.stats()
            assert stats["simulations"] == 0
            assert stats["memo"]["hits"] == 1
        assert first.actual == second.actual
        assert first.predictions == second.predictions
