"""Content-address keys: stable, canonical, and collision-averse."""

from __future__ import annotations

from repro.instrument import MeasurementConfig
from repro.parallel import (
    SCHEMA_VERSION,
    application_key,
    canonical_json,
    cell_key,
    digest,
    measurement_key,
)
from repro.simmachine import ibm_sp_argonne, linear_test_machine


def _mkey(**overrides):
    defaults = dict(
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(),
        benchmark="BT",
        problem_class="S",
        nprocs=4,
        kernels=("solve_x", "solve_y"),
    )
    defaults.update(overrides)
    return measurement_key(
        defaults["machine"],
        defaults["measurement"],
        defaults["benchmark"],
        defaults["problem_class"],
        defaults["nprocs"],
        defaults["kernels"],
    )


class TestDigest:
    def test_equal_keys_share_a_digest(self):
        assert digest(_mkey()) == digest(_mkey())

    def test_digest_is_hex_sha256(self):
        d = digest(_mkey())
        assert len(d) == 64
        int(d, 16)

    def test_every_field_is_load_bearing(self):
        base = digest(_mkey())
        assert digest(_mkey(machine=linear_test_machine())) != base
        assert digest(_mkey(measurement=MeasurementConfig(seed=9))) != base
        assert digest(_mkey(benchmark="SP")) != base
        assert digest(_mkey(problem_class="W")) != base
        assert digest(_mkey(nprocs=9)) != base
        assert digest(_mkey(kernels=("solve_x",))) != base

    def test_kernel_order_matters(self):
        forward = _mkey(kernels=("solve_x", "solve_y"))
        backward = _mkey(kernels=("solve_y", "solve_x"))
        assert digest(forward) != digest(backward)

    def test_kinds_do_not_collide(self):
        machine = ibm_sp_argonne()
        app = application_key(machine, "BT", "S", 4, seed=7)
        cell = cell_key(
            machine, MeasurementConfig(), "BT", "S", 4, (2,), application_seed=7
        )
        assert digest(app) != digest(cell) != digest(_mkey())

    def test_schema_version_embedded(self):
        assert _mkey()["schema"] == SCHEMA_VERSION

    def test_cell_chain_lengths_normalized(self):
        machine = ibm_sp_argonne()
        a = cell_key(machine, MeasurementConfig(), "BT", "S", 4, (3, 2, 2), 7)
        b = cell_key(machine, MeasurementConfig(), "BT", "S", 4, (2, 3), 7)
        assert digest(a) == digest(b)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_tuples_and_lists_serialize_identically(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_floats_round_trip_exactly(self):
        import json

        value = 0.1 + 0.2
        assert json.loads(canonical_json({"v": value}))["v"] == value
