"""SimulationMemoStore: round-trips, verification, self-healing."""

from __future__ import annotations

import json

import pytest

from repro.instrument import MeasurementConfig
from repro.parallel import SimulationMemoStore, measurement_key
from repro.simmachine import ibm_sp_argonne


@pytest.fixture
def store(tmp_path):
    return SimulationMemoStore(tmp_path / "memo")


def key_for(kernels=("solve_x",), nprocs=4):
    return measurement_key(
        ibm_sp_argonne(), MeasurementConfig(), "BT", "S", nprocs, kernels
    )


class TestRoundTrip:
    def test_get_before_put_is_a_miss(self, store):
        assert store.get(key_for()) is None
        assert store.stats()["misses"] == 1

    def test_put_then_get(self, store):
        payload = {"samples": [0.25, 0.5], "overhead": 0.002}
        store.put(key_for(), payload)
        assert store.get(key_for()) == payload
        assert store.stats() == {
            "hits": 1, "misses": 0, "stores": 1, "corruptions": 0,
        }

    def test_distinct_keys_do_not_alias(self, store):
        store.put(key_for(("solve_x",)), {"overhead": 1.0})
        store.put(key_for(("solve_y",)), {"overhead": 2.0})
        assert store.get(key_for(("solve_x",)))["overhead"] == 1.0
        assert store.get(key_for(("solve_y",)))["overhead"] == 2.0
        assert len(store) == 2

    def test_floats_survive_bit_exactly(self, store):
        samples = [0.1 + 0.2, 1e-17, 123456.789012345]
        store.put(key_for(), {"samples": samples, "overhead": 0.0})
        assert store.get(key_for())["samples"] == samples

    def test_last_write_wins(self, store):
        store.put(key_for(), {"overhead": 1.0})
        store.put(key_for(), {"overhead": 2.0})
        assert store.get(key_for())["overhead"] == 2.0
        assert len(store) == 1

    def test_sharded_layout(self, store):
        store.put(key_for(), {"overhead": 1.0})
        path = store.path_for(key_for())
        assert path.exists()
        assert path.parent.name == path.name[:2]
        assert path.parent.parent == store.root


class TestSelfHeal:
    def test_truncated_entry_purged_and_missed(self, store):
        store.put(key_for(), {"overhead": 1.0})
        path = store.path_for(key_for())
        path.write_text(path.read_text()[: 10], encoding="utf-8")
        assert store.get(key_for()) is None
        assert not path.exists()
        assert store.stats()["corruptions"] == 1

    def test_bitflip_fails_checksum_and_purges(self, store):
        store.put(key_for(), {"overhead": 1.0})
        path = store.path_for(key_for())
        wrapper = json.loads(path.read_text(encoding="utf-8"))
        wrapper["payload"]["overhead"] = 999.0  # checksum now stale
        path.write_text(json.dumps(wrapper), encoding="utf-8")
        assert store.get(key_for()) is None
        assert not path.exists()
        assert store.stats()["corruptions"] == 1

    def test_schema_bump_invalidates(self, store):
        store.put(key_for(), {"overhead": 1.0})
        path = store.path_for(key_for())
        wrapper = json.loads(path.read_text(encoding="utf-8"))
        wrapper["schema"] = 999
        path.write_text(json.dumps(wrapper), encoding="utf-8")
        assert store.get(key_for()) is None

    def test_wrong_key_in_file_rejected(self, store):
        store.put(key_for(("solve_x",)), {"overhead": 1.0})
        src = store.path_for(key_for(("solve_x",)))
        dst = store.path_for(key_for(("solve_y",)))
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text(src.read_text(encoding="utf-8"), encoding="utf-8")
        assert store.get(key_for(("solve_y",))) is None

    def test_heal_after_purge(self, store):
        store.put(key_for(), {"overhead": 1.0})
        store.path_for(key_for()).write_text("garbage", encoding="utf-8")
        assert store.get(key_for()) is None
        store.put(key_for(), {"overhead": 1.0})
        assert store.get(key_for()) == {"overhead": 1.0}
