"""Everything crossing the pool boundary must pickle cleanly."""

from __future__ import annotations

import pickle

import pytest

from repro import faults
from repro.experiments import ExperimentPipeline, ExperimentSettings
from repro.instrument import MeasurementConfig
from repro.parallel import CellSpec, run_cell
from repro.simmachine import ibm_sp_argonne


def small_spec(**overrides):
    defaults = dict(
        benchmark="BT",
        problem_class="S",
        nprocs=4,
        chain_lengths=(2,),
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(repetitions=2, warmup=0),
        application_seed=7,
    )
    defaults.update(overrides)
    return CellSpec(**defaults)


class TestCellSpec:
    def test_round_trips(self):
        spec = small_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_round_trips_with_fault_plan(self):
        plan = faults.plan_from_specs(
            [{"site": "sim.run.noise", "probability": 0.5, "param": 1.5}],
            seed=3,
        )
        spec = small_spec(fault_plan=plan, cache_dir="/tmp/x")
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestCellResult:
    def test_round_trips(self):
        result = run_cell(small_spec())
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.inputs == result.inputs


class TestConfigResultPickling:
    @pytest.fixture(scope="class")
    def result(self):
        pipeline = ExperimentPipeline(
            ExperimentSettings(
                measurement=MeasurementConfig(repetitions=2, warmup=0)
            )
        )
        return pipeline.config_result("BT", "S", 4, chain_lengths=[2])

    def test_round_trips_and_compares_equal(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.actual == result.actual
        assert clone.inputs == result.inputs

    def test_coupling_cache_not_shipped(self, result):
        result.coupling_prediction(2)  # warm the derived-value memo
        assert result._coupling_cache
        clone = pickle.loads(pickle.dumps(result))
        assert clone._coupling_cache == {}
        # ...and recomputes to the identical value on demand.
        assert clone.coupling_prediction(2) == result.coupling_prediction(2)

    def test_predictions_survive_the_round_trip(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.summation == result.summation
        assert clone.coupling_prediction(2) == result.coupling_prediction(2)
