"""Worker death mid-cell: the pool respawns, deltas merge exactly once.

The executor's recovery contract (see :mod:`repro.parallel.executor`):
when a worker is killed mid-cell the pool is rebuilt and only the cells
with no result yet are resubmitted, so completed work is never re-run and
every counter/profile delta reaches the parent registry exactly once —
the killed attempt contributes nothing, its respawned attempt contributes
once.
"""

from __future__ import annotations

import functools
import os
import signal

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro import obs
from repro.instrument import MeasurementConfig
from repro.obs.profile import ProfileData
from repro.parallel.executor import execute_cells
from repro.parallel.worker import CellResult, CellSpec
from repro.simmachine.machine import ibm_sp_argonne

#: The cell the doomed worker picks up (distinguished by nprocs).
KILL_NPROCS = 9


def _spec(nprocs: int) -> CellSpec:
    return CellSpec(
        benchmark="BT",
        problem_class="S",
        nprocs=nprocs,
        chain_lengths=(2,),
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(repetitions=1, warmup=0, seed=0),
    )


def _stub_cell(spec: CellSpec, flag_path=None) -> CellResult:
    """Module-level executor seam (REP007: picklable, no captured state).

    The first worker to pick up the ``KILL_NPROCS`` cell removes the flag
    file and SIGKILLs itself mid-cell — the same failure shape as an OOM
    kill. The resubmitted attempt finds no flag and completes normally.
    """
    if (
        flag_path is not None
        and spec.nprocs == KILL_NPROCS
        and os.path.exists(flag_path)
    ):
        os.remove(flag_path)
        os.kill(os.getpid(), signal.SIGKILL)
    profile = ProfileData(0.01)
    profile.record(("worker:cell",), ("cell.span",), 0.0, 1)
    return CellResult(
        benchmark=spec.benchmark,
        problem_class=spec.problem_class,
        nprocs=spec.nprocs,
        chain_lengths=spec.chain_lengths,
        actual=float(spec.nprocs),
        inputs={},
        memo_stats={},
        counters=(("respawn_test_cells", (), 1),),
        duration=0.01,
        profile=profile.to_dict(),
    )


def test_killed_worker_respawns_and_merges_once(tmp_path):
    flag = tmp_path / "kill-once"
    flag.write_text("armed")
    specs = [_spec(n) for n in (4, 9, 16, 25)]
    run = functools.partial(_stub_cell, flag_path=str(flag))

    profiler = obs.SamplingProfiler(interval=10.0, backend="thread").start()
    try:
        results = execute_cells(specs, jobs=2, _run=run)
    finally:
        data = profiler.stop()

    # Every cell completed, in submission order, exactly once.
    assert [r.nprocs for r in results] == [4, 9, 16, 25]
    assert not flag.exists()  # the kill really happened

    snapshot = obs.get_registry().snapshot()
    # One pool rebuild, and one delta per cell despite the lost attempt.
    assert snapshot["parallel_worker_respawns"] == 1
    assert snapshot["respawn_test_cells"] == len(specs)
    # Worker profiles crossed the boundary exactly once per cell too.
    assert data.samples[("worker:cell",)] == len(specs)
    assert data.span_samples[("cell.span",)] == len(specs)


def test_persistent_killer_exhausts_respawn_budget(tmp_path):
    flag = tmp_path / "kill-always"
    specs = [_spec(n) for n in (4, 9, 16)]
    run = functools.partial(_stub_cell, flag_path=str(flag))

    flag.write_text("armed")
    with pytest.raises(BrokenProcessPool):
        # Re-arm the flag after each pool break via max_respawns=0: the
        # first break must propagate instead of retrying forever.
        execute_cells(specs, jobs=2, max_respawns=0, _run=run)
    assert obs.get_registry().snapshot()["parallel_worker_respawns"] == 1


def test_serial_path_ignores_respawn_machinery():
    specs = [_spec(4)]
    results = execute_cells(specs, jobs=1, _run=_stub_cell)
    assert [r.nprocs for r in results] == [4]
    assert "parallel_worker_respawns" not in obs.get_registry().snapshot()
