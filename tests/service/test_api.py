"""Wire front-ends: client facade, JSON-lines loop, TCP socket."""

import io
import json
import socket
import threading

from repro.instrument import MeasurementConfig
from repro.service import (
    PredictionService,
    ServiceClient,
    serve_jsonl,
    serve_socket,
)
from repro.service.api import handle_line

MEASUREMENT = MeasurementConfig(repetitions=2, warmup=1)


def make_service():
    return PredictionService(
        measurement=MEASUREMENT, executor="inline", batch_window=0.0
    )


class TestServiceClient:
    def test_predict_keyword_facade(self):
        with ServiceClient(make_service()) as client:
            report = client.predict("bt", "s", 4, chain_length=2)
            assert report.actual > 0
            assert "Summation" in report.predictions
            assert client.stats()["requests"] == 1

    def test_predict_dict_returns_wire_form(self):
        with ServiceClient(make_service()) as client:
            response = client.predict_dict(
                {"benchmark": "BT", "problem_class": "S", "nprocs": 4}
            )
            assert response["ok"] is True
            assert response["request"]["benchmark"] == "BT"
            assert response["best"] in response["predictions"]

    def test_unowned_client_leaves_service_open(self):
        service = make_service()
        with ServiceClient(service, owns=False):
            pass
        # still serving:
        with ServiceClient(service):
            assert service.stats()["requests"] == 0


class TestHandleLine:
    def test_blank_line_owes_no_response(self):
        with make_service() as service:
            assert handle_line(service, "   \n") is None

    def test_single_request(self):
        with make_service() as service:
            response = json.loads(
                handle_line(
                    service,
                    '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}',
                )
            )
            assert response["ok"] is True
            assert response["errors_percent"]

    def test_array_is_one_batched_response(self):
        with make_service() as service:
            line = json.dumps(
                [
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4},
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4,
                     "chain_length": 3},
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4,
                     "chain_length": 99},
                ]
            )
            response = json.loads(handle_line(service, line))
            assert response["ok"] is True
            results = response["results"]
            assert len(results) == 3
            assert results[0]["ok"] and results[1]["ok"]
            assert results[2]["ok"] is False  # chain longer than the flow

    def test_invalid_json_and_bad_shapes(self):
        with make_service() as service:
            assert json.loads(handle_line(service, "not json"))["ok"] is False
            assert json.loads(handle_line(service, '"just a string"'))["ok"] is False
            bad = json.loads(
                handle_line(service, '{"benchmark": "BT", "bogus": 1}')
            )
            assert bad["ok"] is False and "unknown request fields" in bad["error"]

    def test_stats_command(self):
        with make_service() as service:
            response = json.loads(handle_line(service, '{"cmd": "stats"}'))
            assert response["ok"] is True
            assert "cache_hit_ratio" in response["stats"]


class TestServeJsonl:
    def test_stream_roundtrip_returns_stats(self):
        lines = [
            '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}',
            "",
            '{"benchmark": "bt", "problem_class": "s", "nprocs": 4}',
        ]
        out = io.StringIO()
        with make_service() as service:
            stats = serve_jsonl(service, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(responses) == 2  # blank line produced no response
        assert all(r["ok"] for r in responses)
        assert stats["requests"] == 2
        assert stats["l1_hits"] == 1  # case-normalized repeat hit the cache


class TestServeSocket:
    def test_tcp_line_protocol(self):
        service = make_service()
        ready = threading.Event()
        bound: list = []
        control: list = []
        server_thread = threading.Thread(
            target=serve_socket,
            args=(service,),
            kwargs={"ready": ready, "bound": bound, "control": control},
            daemon=True,
        )
        server_thread.start()
        assert ready.wait(timeout=10)
        host, port = bound[0]
        try:
            with socket.create_connection((host, port), timeout=10) as conn:
                conn.sendall(
                    b'{"benchmark": "BT", "problem_class": "S", "nprocs": 4}\n'
                )
                response = json.loads(conn.makefile().readline())
                assert response["ok"] is True
                assert response["best"]
        finally:
            control[0].shutdown()
            server_thread.join(timeout=10)
            service.close()
        assert not server_thread.is_alive()
