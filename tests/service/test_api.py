"""Wire front-ends: client facade, JSON-lines loop, TCP socket."""

import io
import json
import socket
import threading

from repro.instrument import MeasurementConfig
from repro.service import (
    PredictionService,
    ServiceClient,
    serve_jsonl,
    serve_socket,
)
from repro.service.api import handle_line

MEASUREMENT = MeasurementConfig(repetitions=2, warmup=1)


def make_service():
    return PredictionService(
        measurement=MEASUREMENT, executor="inline", batch_window=0.0
    )


class TestServiceClient:
    def test_predict_keyword_facade(self):
        with ServiceClient(make_service()) as client:
            report = client.predict("bt", "s", 4, chain_length=2)
            assert report.actual > 0
            assert "Summation" in report.predictions
            assert client.stats()["requests"] == 1

    def test_predict_dict_returns_wire_form(self):
        with ServiceClient(make_service()) as client:
            response = client.predict_dict(
                {"benchmark": "BT", "problem_class": "S", "nprocs": 4}
            )
            assert response["ok"] is True
            assert response["request"]["benchmark"] == "BT"
            assert response["best"] in response["predictions"]

    def test_unowned_client_leaves_service_open(self):
        service = make_service()
        with ServiceClient(service, owns=False):
            pass
        # still serving:
        with ServiceClient(service):
            assert service.stats()["requests"] == 0


class TestHandleLine:
    def test_blank_line_owes_no_response(self):
        with make_service() as service:
            assert handle_line(service, "   \n") is None

    def test_single_request(self):
        with make_service() as service:
            response = json.loads(
                handle_line(
                    service,
                    '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}',
                )
            )
            assert response["ok"] is True
            assert response["errors_percent"]

    def test_array_is_one_batched_response(self):
        with make_service() as service:
            line = json.dumps(
                [
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4},
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4,
                     "chain_length": 3},
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4,
                     "chain_length": 99},
                ]
            )
            response = json.loads(handle_line(service, line))
            assert response["ok"] is True
            results = response["results"]
            assert len(results) == 3
            assert results[0]["ok"] and results[1]["ok"]
            assert results[2]["ok"] is False  # chain longer than the flow

    def test_invalid_json_and_bad_shapes(self):
        with make_service() as service:
            assert json.loads(handle_line(service, "not json"))["ok"] is False
            assert json.loads(handle_line(service, '"just a string"'))["ok"] is False
            bad = json.loads(
                handle_line(service, '{"benchmark": "BT", "bogus": 1}')
            )
            assert bad["ok"] is False and "unknown request fields" in bad["error"]

    def test_stats_command(self):
        with make_service() as service:
            response = json.loads(handle_line(service, '{"cmd": "stats"}'))
            assert response["ok"] is True
            assert "cache_hit_ratio" in response["stats"]

    def test_correlation_id_is_echoed(self):
        with make_service() as service:
            response = json.loads(
                handle_line(
                    service,
                    '{"benchmark": "BT", "problem_class": "S", "nprocs": 4,'
                    ' "id": "req-7"}',
                )
            )
            assert response["ok"] is True
            assert response["id"] == "req-7"

    def test_correlation_id_echoed_on_errors_too(self):
        with make_service() as service:
            response = json.loads(
                handle_line(service, '{"benchmark": "BT", "id": 13}')
            )
            assert response["ok"] is False
            assert response["id"] == 13

    def test_batch_items_keep_their_ids(self):
        with make_service() as service:
            line = json.dumps(
                [
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4,
                     "id": "a"},
                    {"benchmark": "BT", "bogus": 1, "id": "b"},
                    {"benchmark": "BT", "problem_class": "S", "nprocs": 4},
                ]
            )
            results = json.loads(handle_line(service, line))["results"]
            assert results[0]["ok"] and results[0]["id"] == "a"
            assert not results[1]["ok"] and results[1]["id"] == "b"
            assert "id" not in results[2]

    def test_correlation_id_becomes_the_trace_id(self):
        from repro import obs

        with make_service() as service:
            handle_line(
                service,
                '{"benchmark": "BT", "problem_class": "S", "nprocs": 4,'
                ' "id": "trace-me"}',
            )
        names = {
            s.name for s in obs.get_tracer().spans()
            if s.trace_id == "trace-me"
        }
        assert "service.predict" in names


class TestMetricsCommand:
    def _metrics(self, service):
        # Issue one real prediction first so every subsystem has recorded.
        handle_line(
            service, '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}'
        )
        return json.loads(handle_line(service, '{"cmd": "metrics"}'))

    def test_snapshot_covers_every_layer(self):
        with make_service() as service:
            response = self._metrics(service)
        assert response["ok"] is True
        snap = response["metrics"]
        assert snap["service.requests"] == 1  # request counts
        assert "service.cache_hit_ratio" in snap  # cache hit ratio
        assert "service.queue_depth.high_water" in snap  # queue high-water
        assert snap["sim_events"] > 0  # simulator event counters
        assert snap["sim_messages"] > 0
        assert snap["sim_noise_draws"] > 0
        # Per-stage span histograms:
        for stage in ("service.predict", "measure.chain", "app.run"):
            assert snap[f"span_seconds{{name={stage}}}"]["count"] >= 1

    def test_prometheus_exposition_included(self):
        with make_service() as service:
            response = self._metrics(service)
        text = response["prometheus"]
        assert "# TYPE service_requests_total counter" in text
        assert "service_requests_total 1" in text
        assert "sim_events_total" in text
        assert "span_seconds_bucket" in text

    def test_bare_metrics_line_shorthand(self):
        with make_service() as service:
            response = json.loads(handle_line(service, "metrics\n"))
            assert response["ok"] is True
            assert "prometheus" in response


class TestServeJsonl:
    def test_stream_roundtrip_returns_stats(self):
        lines = [
            '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}',
            "",
            '{"benchmark": "bt", "problem_class": "s", "nprocs": 4}',
        ]
        out = io.StringIO()
        with make_service() as service:
            stats = serve_jsonl(service, lines, out)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(responses) == 2  # blank line produced no response
        assert all(r["ok"] for r in responses)
        assert stats["requests"] == 2
        assert stats["l1_hits"] == 1  # case-normalized repeat hit the cache

    def test_metrics_in_a_jsonl_session(self):
        lines = [
            '{"benchmark": "BT", "problem_class": "S", "nprocs": 4, "id": "x"}',
            '{"benchmark": "BT", "problem_class": "S", "nprocs": 4}',
            '{"cmd": "metrics"}',
        ]
        out = io.StringIO()
        with make_service() as service:
            serve_jsonl(service, lines, out)
        first, second, metrics = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        assert first["id"] == "x" and "id" not in second
        snap = metrics["metrics"]
        assert snap["service.requests"] == 2
        assert snap["service.cache_hit_ratio"] == 0.5  # repeat hit L1


class TestServeSocket:
    def test_tcp_line_protocol(self):
        service = make_service()
        ready = threading.Event()
        bound: list = []
        control: list = []
        server_thread = threading.Thread(
            target=serve_socket,
            args=(service,),
            kwargs={"ready": ready, "bound": bound, "control": control},
            daemon=True,
        )
        server_thread.start()
        assert ready.wait(timeout=10)
        host, port = bound[0]
        try:
            with socket.create_connection((host, port), timeout=10) as conn:
                conn.sendall(
                    b'{"benchmark": "BT", "problem_class": "S", "nprocs": 4}\n'
                )
                response = json.loads(conn.makefile().readline())
                assert response["ok"] is True
                assert response["best"]
        finally:
            control[0].shutdown()
            server_thread.join(timeout=10)
            service.close()
        assert not server_thread.is_alive()

    def test_tcp_metrics_command_end_to_end(self):
        service = make_service()
        ready = threading.Event()
        bound: list = []
        control: list = []
        server_thread = threading.Thread(
            target=serve_socket,
            args=(service,),
            kwargs={"ready": ready, "bound": bound, "control": control},
            daemon=True,
        )
        server_thread.start()
        assert ready.wait(timeout=10)
        host, port = bound[0]
        try:
            with socket.create_connection((host, port), timeout=10) as conn:
                reader = conn.makefile()
                conn.sendall(
                    b'{"benchmark": "BT", "problem_class": "S", "nprocs": 4,'
                    b' "id": "tcp-1"}\n'
                )
                prediction = json.loads(reader.readline())
                assert prediction["ok"] and prediction["id"] == "tcp-1"
                conn.sendall(b'{"cmd": "metrics"}\n')
                response = json.loads(reader.readline())
        finally:
            control[0].shutdown()
            server_thread.join(timeout=10)
            service.close()
        assert response["ok"] is True
        snap = response["metrics"]
        assert snap["service.requests"] == 1
        assert "service.cache_hit_ratio" in snap
        assert "service.queue_depth.high_water" in snap
        assert snap["sim_events"] > 0
        assert snap["span_seconds{name=service.predict}"]["count"] == 1
        assert "service_requests_total 1" in response["prometheus"]
