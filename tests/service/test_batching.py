"""Single-flight deduplication and config batching."""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.errors import ServiceClosedError
from repro.service.batching import RequestBatcher


@dataclass(frozen=True)
class FakeRequest:
    name: str
    config: str = "cfg"

    @property
    def key(self):
        return ("key", self.name)

    @property
    def config_key(self):
        return ("config", self.config)


class Collector:
    """Dispatch target that records groups and resolves futures on demand."""

    def __init__(self, auto_resolve=True):
        self.groups = []
        self.auto_resolve = auto_resolve
        self._lock = threading.Lock()

    def __call__(self, flights):
        with self._lock:
            self.groups.append(flights)
        if self.auto_resolve:
            for flight in flights:
                flight.future.set_result(flight.request.name)

    def wait_for_groups(self, n, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.groups) >= n:
                    return list(self.groups)
            time.sleep(0.005)
        raise AssertionError(f"expected {n} groups, saw {len(self.groups)}")


class TestSingleFlight:
    def test_identical_requests_share_one_future(self):
        collector = Collector(auto_resolve=False)
        batcher = RequestBatcher(collector, window=0.05)
        f1, coalesced1 = batcher.submit(FakeRequest("a"))
        f2, coalesced2 = batcher.submit(FakeRequest("a"))
        assert f1 is f2
        assert not coalesced1 and coalesced2
        collector.wait_for_groups(1)
        assert len(collector.groups[0]) == 1
        assert collector.groups[0][0].waiters == 2
        f1.set_result("done")
        batcher.close()

    def test_key_becomes_coalescable_again_after_resolution(self):
        collector = Collector()
        batcher = RequestBatcher(collector, window=0.0)
        f1, _ = batcher.submit(FakeRequest("a"))
        assert f1.result(timeout=5) == "a"
        # resolved → no longer in flight → a new submit is a fresh flight
        for _ in range(100):
            if not batcher.in_flight(("key", "a")):
                break
            time.sleep(0.005)
        f2, coalesced = batcher.submit(FakeRequest("a"))
        assert not coalesced
        assert f2 is not f1
        assert f2.result(timeout=5) == "a"
        batcher.close()


class TestGrouping:
    def test_burst_groups_by_config_key(self):
        collector = Collector()
        batcher = RequestBatcher(collector, window=0.1)
        futures = [
            batcher.submit(FakeRequest(name, config))[0]
            for name, config in [
                ("a", "x"), ("b", "x"), ("c", "y"), ("d", "x"),
            ]
        ]
        for f in futures:
            f.result(timeout=5)
        groups = collector.wait_for_groups(2)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 3]  # x-group of 3, y-group of 1
        batcher.close()

    def test_dispatch_exception_fails_the_group(self):
        def explode(flights):
            raise RuntimeError("boom")

        batcher = RequestBatcher(explode, window=0.0)
        future, _ = batcher.submit(FakeRequest("a"))
        with pytest.raises(RuntimeError, match="boom"):
            future.result(timeout=5)
        batcher.close()


class TestFlushThresholds:
    def test_full_batch_skips_the_collection_window(self):
        naps = []

        def no_sleep(seconds):
            naps.append(seconds)

        collector = Collector()
        batcher = RequestBatcher(
            collector, window=5.0, sleep=no_sleep, max_batch=1
        )
        future, _ = batcher.submit(FakeRequest("a"))
        assert future.result(timeout=5) == "a"
        # max_batch=1 means every submission is already a full batch: the
        # 5 s window must never be slept.
        assert naps == []
        batcher.close()

    def test_partial_batch_waits_out_the_window(self):
        slept = threading.Event()

        def tracking_sleep(seconds):
            slept.set()
            time.sleep(0.001)

        collector = Collector()
        batcher = RequestBatcher(
            collector, window=0.01, sleep=tracking_sleep, max_batch=10
        )
        future, _ = batcher.submit(FakeRequest("a"))
        assert future.result(timeout=5) == "a"
        assert slept.is_set()  # below the threshold → window applies
        groups = collector.wait_for_groups(1)
        assert len(groups[0]) == 1  # the partial batch still dispatches
        batcher.close()

    def test_burst_reaching_threshold_dispatches_together(self):
        collector = Collector()
        gate = threading.Event()
        batcher = RequestBatcher(
            collector,
            window=10.0,
            sleep=lambda _s: gate.wait(5),
            max_batch=3,
        )
        futures = [
            batcher.submit(FakeRequest(name))[0] for name in ("a", "b", "c")
        ]
        # Three pending >= max_batch: the *next* loop pass flushes without
        # waiting the 10 s window (the first pass may be parked in sleep).
        gate.set()
        for f in futures:
            f.result(timeout=5)
        assert sum(len(g) for g in collector.wait_for_groups(1)) == 3
        batcher.close()

    def test_max_batch_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            RequestBatcher(Collector(), max_batch=0)


class TestLifecycle:
    def test_close_rejects_new_submissions(self):
        batcher = RequestBatcher(Collector(), window=0.0)
        batcher.close()
        with pytest.raises(ServiceClosedError):
            batcher.submit(FakeRequest("a"))

    def test_close_is_idempotent(self):
        batcher = RequestBatcher(Collector(), window=0.0)
        batcher.close()
        batcher.close()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            RequestBatcher(Collector(), window=-1)

    def test_close_fails_queued_but_not_dispatched_flights(self):
        # A dispatcher wedged in its collection window holds the queue;
        # close() must fail those flights typed, not strand them.
        parked = threading.Event()
        release = threading.Event()

        def stalling_sleep(_seconds):
            parked.set()
            release.wait(5)

        collector = Collector(auto_resolve=False)
        batcher = RequestBatcher(collector, window=1.0, sleep=stalling_sleep)
        f1, _ = batcher.submit(FakeRequest("a"))
        assert parked.wait(timeout=5)  # dispatcher now inside the window
        f2, _ = batcher.submit(FakeRequest("b"))  # queued behind the nap

        closer = threading.Thread(target=batcher.close)
        closer.start()
        release.set()
        closer.join(timeout=5)
        assert not closer.is_alive()
        # Every future resolves: dispatched ones via the collector (left
        # pending here, so the dispatcher relayed no result — they must
        # have been handed over), queued ones via ServiceClosedError.
        resolved = {"closed": 0, "dispatched": 0}
        for f in (f1, f2):
            try:
                f.result(timeout=0.1)
                resolved["dispatched"] += 1
            except ServiceClosedError:
                resolved["closed"] += 1
            except Exception:
                resolved["dispatched"] += 1
        assert resolved["closed"] >= 1

    def test_in_flight_work_completes_through_close(self):
        # Work already handed to the dispatch callable finishes normally
        # even when close() lands while it is running.
        dispatch_started = threading.Event()
        finish = threading.Event()

        def slow_dispatch(flights):
            dispatch_started.set()
            assert finish.wait(timeout=5)
            for flight in flights:
                flight.future.set_result(flight.request.name)

        batcher = RequestBatcher(slow_dispatch, window=0.0)
        future, _ = batcher.submit(FakeRequest("a"))
        assert dispatch_started.wait(timeout=5)
        closer = threading.Thread(target=batcher.close)
        closer.start()
        finish.set()
        closer.join(timeout=5)
        assert not closer.is_alive()
        assert future.result(timeout=5) == "a"
