"""Single-flight deduplication and config batching."""

import threading
import time
from dataclasses import dataclass

import pytest

from repro.errors import ServiceClosedError
from repro.service.batching import RequestBatcher


@dataclass(frozen=True)
class FakeRequest:
    name: str
    config: str = "cfg"

    @property
    def key(self):
        return ("key", self.name)

    @property
    def config_key(self):
        return ("config", self.config)


class Collector:
    """Dispatch target that records groups and resolves futures on demand."""

    def __init__(self, auto_resolve=True):
        self.groups = []
        self.auto_resolve = auto_resolve
        self._lock = threading.Lock()

    def __call__(self, flights):
        with self._lock:
            self.groups.append(flights)
        if self.auto_resolve:
            for flight in flights:
                flight.future.set_result(flight.request.name)

    def wait_for_groups(self, n, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.groups) >= n:
                    return list(self.groups)
            time.sleep(0.005)
        raise AssertionError(f"expected {n} groups, saw {len(self.groups)}")


class TestSingleFlight:
    def test_identical_requests_share_one_future(self):
        collector = Collector(auto_resolve=False)
        batcher = RequestBatcher(collector, window=0.05)
        f1, coalesced1 = batcher.submit(FakeRequest("a"))
        f2, coalesced2 = batcher.submit(FakeRequest("a"))
        assert f1 is f2
        assert not coalesced1 and coalesced2
        collector.wait_for_groups(1)
        assert len(collector.groups[0]) == 1
        assert collector.groups[0][0].waiters == 2
        f1.set_result("done")
        batcher.close()

    def test_key_becomes_coalescable_again_after_resolution(self):
        collector = Collector()
        batcher = RequestBatcher(collector, window=0.0)
        f1, _ = batcher.submit(FakeRequest("a"))
        assert f1.result(timeout=5) == "a"
        # resolved → no longer in flight → a new submit is a fresh flight
        for _ in range(100):
            if not batcher.in_flight(("key", "a")):
                break
            time.sleep(0.005)
        f2, coalesced = batcher.submit(FakeRequest("a"))
        assert not coalesced
        assert f2 is not f1
        assert f2.result(timeout=5) == "a"
        batcher.close()


class TestGrouping:
    def test_burst_groups_by_config_key(self):
        collector = Collector()
        batcher = RequestBatcher(collector, window=0.1)
        futures = [
            batcher.submit(FakeRequest(name, config))[0]
            for name, config in [
                ("a", "x"), ("b", "x"), ("c", "y"), ("d", "x"),
            ]
        ]
        for f in futures:
            f.result(timeout=5)
        groups = collector.wait_for_groups(2)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 3]  # x-group of 3, y-group of 1
        batcher.close()

    def test_dispatch_exception_fails_the_group(self):
        def explode(flights):
            raise RuntimeError("boom")

        batcher = RequestBatcher(explode, window=0.0)
        future, _ = batcher.submit(FakeRequest("a"))
        with pytest.raises(RuntimeError, match="boom"):
            future.result(timeout=5)
        batcher.close()


class TestLifecycle:
    def test_close_rejects_new_submissions(self):
        batcher = RequestBatcher(Collector(), window=0.0)
        batcher.close()
        with pytest.raises(ServiceClosedError):
            batcher.submit(FakeRequest("a"))

    def test_close_is_idempotent(self):
        batcher = RequestBatcher(Collector(), window=0.0)
        batcher.close()
        batcher.close()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            RequestBatcher(Collector(), window=-1)
