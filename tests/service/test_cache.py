"""LRU/TTL cache and the two-tier composition."""

import threading

import pytest

from repro.instrument import PerformanceDatabase
from repro.service.cache import ACTUAL_KEY, LRUCache, TieredPredictionCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestLRUCache:
    def test_roundtrip(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 42) == 42

    def test_evicts_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes the LRU tail
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not a second entry
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_ttl_expiry_uses_injected_clock(self):
        clock = FakeClock()
        cache = LRUCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)  # now 10.1s old
        assert cache.get("a") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_stats_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["capacity"] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)
        with pytest.raises(ValueError):
            LRUCache(ttl=0)

    def test_thread_hammer(self):
        cache = LRUCache(capacity=64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    cache.put((base, i % 32), i)
                    cache.get((base, (i * 7) % 32))
            except Exception as exc:  # pragma: no cover — failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64


class TestTieredPredictionCache:
    def test_owns_and_closes_internal_database(self, tmp_path):
        cache = TieredPredictionCache(db_path=str(tmp_path / "t.sqlite"))
        assert len(cache.database) == 0
        cache.close()
        with pytest.raises(Exception):
            len(cache.database)

    def test_external_database_left_open(self):
        db = PerformanceDatabase()
        cache = TieredPredictionCache(database=db)
        cache.close()
        assert len(db) == 0  # still usable
        db.close()

    def test_external_empty_database_is_not_replaced(self):
        # PerformanceDatabase defines __len__; an empty one is falsy. The
        # tier must still adopt it (identity, not truthiness).
        db = PerformanceDatabase()
        cache = TieredPredictionCache(database=db)
        assert cache.database is db
        db.close()

    def test_report_tier_and_stats(self):
        cache = TieredPredictionCache(capacity=8)
        key = ("BT", "S", 4, 2, 0)
        assert cache.get_report(key) is None
        cache.put_report(key, "report")
        assert cache.get_report(key) == "report"
        stats = cache.stats()
        assert stats["l1"]["hits"] == 1
        assert stats["l2"]["measurements"] == 0
        cache.close()

    def test_actual_key_never_collides_with_real_chains(self):
        assert ACTUAL_KEY[0].startswith("__")
