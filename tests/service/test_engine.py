"""The prediction service engine: caching, coalescing, backpressure."""

import threading

import pytest

from repro.errors import ServiceError, ServiceSaturatedError
from repro.instrument import MeasurementConfig
from repro.service import PredictRequest, PredictionService
from repro.service.workers import execute_cell

MEASUREMENT = MeasurementConfig(repetitions=2, warmup=1)


def make_service(**kwargs):
    kwargs.setdefault("measurement", MEASUREMENT)
    return PredictionService(**kwargs)


class TestPredictRequest:
    def test_normalizes_case(self):
        request = PredictRequest("bt", "s", 4)
        assert request.benchmark == "BT"
        assert request.problem_class == "S"

    def test_key_includes_chain_length_and_seed(self):
        a = PredictRequest("BT", "S", 4, chain_length=2, seed=0)
        b = PredictRequest("BT", "S", 4, chain_length=3, seed=0)
        c = PredictRequest("BT", "S", 4, chain_length=2, seed=1)
        assert len({a.key, b.key, c.key}) == 3
        # …but the same measurement plan group for equal seeds:
        assert a.config_key == b.config_key
        assert a.config_key != c.config_key

    def test_validation(self):
        with pytest.raises(ServiceError, match="unknown benchmark"):
            PredictRequest("XX", "S", 4)
        with pytest.raises(ServiceError, match="unknown problem class"):
            PredictRequest("BT", "Z", 4)
        with pytest.raises(ServiceError, match="nprocs"):
            PredictRequest("BT", "S", 0)
        with pytest.raises(ServiceError, match="chain_length"):
            PredictRequest("BT", "S", 4, chain_length=1)

    def test_dict_roundtrip(self):
        request = PredictRequest("BT", "W", 9, chain_length=3, seed=5)
        assert PredictRequest.from_dict(request.to_dict()) == request

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ServiceError, match="unknown request fields"):
            PredictRequest.from_dict({"benchmark": "BT", "bogus": 1})
        with pytest.raises(ServiceError, match="missing field"):
            PredictRequest.from_dict({"benchmark": "BT"})


class TestServing:
    def test_report_matches_one_shot_prediction(self):
        from repro import quick_prediction
        from repro.experiments import ExperimentSettings

        with make_service(executor="inline", batch_window=0.0) as service:
            served = service.predict(PredictRequest("BT", "S", 4, chain_length=2))
        one_shot = quick_prediction(
            "BT", "S", 4, 2, settings=ExperimentSettings(measurement=MEASUREMENT)
        )
        assert served.actual == pytest.approx(one_shot.actual)
        assert served.predictions == pytest.approx(one_shot.predictions)

    def test_repeat_request_hits_l1(self):
        with make_service(executor="inline", batch_window=0.0) as service:
            request = PredictRequest("BT", "S", 4)
            first = service.predict(request)
            second = service.predict(request)
            assert first == second
            stats = service.stats()
            assert stats["requests"] == 2
            assert stats["l1_hits"] == 1
            assert stats["misses"] == 1
            assert stats["cache_hit_ratio"] == pytest.approx(0.5)

    def test_chain_lengths_share_one_measurement_plan(self):
        with make_service(executor="inline", batch_window=0.05) as service:
            reports = service.predict_many(
                [
                    PredictRequest("BT", "S", 4, chain_length=2),
                    PredictRequest("BT", "S", 4, chain_length=3),
                ]
            )
            assert len(reports) == 2
            assert reports[0].actual == pytest.approx(reports[1].actual)
            stats = service.stats()
            assert stats["batches"] == 1
            assert stats["batch_size"]["max"] == 2.0

    def test_l2_reconstruction_across_restart(self, tmp_path):
        db = str(tmp_path / "perf.sqlite")
        request = PredictRequest("BT", "S", 4)
        with make_service(db_path=db, executor="inline", batch_window=0.0) as a:
            cold = a.predict(request)
            assert a.stats()["simulations"] > 0
        with make_service(db_path=db, executor="inline", batch_window=0.0) as b:
            warm = b.predict(request)
            stats = b.stats()
            assert stats["simulations"] == 0
            assert stats["l2_hits"] == 1
            assert warm == cold

    def test_ttl_expiry_falls_back_to_l2_not_resimulation(self):
        clock_now = [0.0]
        with make_service(
            executor="inline",
            batch_window=0.0,
            cache_ttl=60.0,
            clock=lambda: clock_now[0],
        ) as service:
            request = PredictRequest("BT", "S", 4)
            service.predict(request)
            simulations_cold = service.stats()["simulations"]
            clock_now[0] = 120.0  # L1 entry is stale now
            service.predict(request)
            stats = service.stats()
            assert stats["l1_hits"] == 0
            assert stats["l2_hits"] == 1
            assert stats["simulations"] == simulations_cold

    def test_execution_errors_propagate_and_count(self):
        def explode(task, database=None):
            raise RuntimeError("simulator on fire")

        with make_service(
            executor="inline", batch_window=0.0, execute=explode
        ) as service:
            with pytest.raises(RuntimeError, match="on fire"):
                service.predict(PredictRequest("BT", "S", 4))
            assert service.stats()["errors"] == 1

    def test_closed_service_rejects(self):
        service = make_service(executor="inline", batch_window=0.0)
        service.close()
        from repro.errors import ServiceClosedError

        with pytest.raises(ServiceClosedError):
            service.predict(PredictRequest("BT", "S", 4))

    def test_process_executor_requires_file_database(self):
        with pytest.raises(ServiceError, match="file-backed"):
            make_service(executor="process")


class TestSingleFlight:
    def test_concurrent_identical_requests_simulate_once(self):
        calls = []
        lock = threading.Lock()

        def counting(task, database=None):
            with lock:
                calls.append(task)
            return execute_cell(task, database)

        with make_service(
            execute=counting, batch_window=0.05, max_workers=2
        ) as service:
            request = PredictRequest("BT", "S", 4)
            results = [None] * 8

            def worker(i):
                results[i] = service.predict(request, timeout=30)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(calls) == 1  # exactly one simulation for 8 requests
            assert all(r == results[0] for r in results)
            stats = service.stats()
            assert stats["coalesced"] == 7
            assert stats["misses"] == 1


class TestBackpressure:
    def test_saturated_service_rejects_with_retry_after(self):
        started = threading.Event()
        release = threading.Event()

        def blocking(task, database=None):
            started.set()
            assert release.wait(timeout=30)
            return execute_cell(task, database)

        service = make_service(
            execute=blocking,
            batch_window=0.0,
            max_workers=1,
            queue_depth=1,
        )
        try:
            first_result = []

            def first():
                first_result.append(
                    service.predict(PredictRequest("BT", "S", 4), timeout=30)
                )

            thread = threading.Thread(target=first)
            thread.start()
            assert started.wait(timeout=10)  # the pool is now saturated
            with pytest.raises(ServiceSaturatedError) as excinfo:
                service.predict(PredictRequest("BT", "S", 1))
            assert excinfo.value.retry_after > 0
            # Identical requests still coalesce instead of being rejected.
            coalesced_before = service.stats()["coalesced"]
            release.set()
            thread.join(timeout=30)
            assert first_result and first_result[0].actual > 0
            stats = service.stats()
            assert stats["rejected"] == 1
            assert stats["coalesced"] == coalesced_before
        finally:
            release.set()
            service.close()
