"""The fault-injection layer and the degradation machinery it exercises.

Unit coverage for :mod:`repro.faults` (specs, plans, determinism, the
injector) plus per-site integration tests: worker crashes flipping the
service into degraded mode and probes recovering it, request deadlines,
client retry with backoff, sqlite-tier corruption detection, L1 drops,
and the wire-level disconnect/error typing.
"""

import threading

import pytest

from repro import faults, obs
from repro.errors import (
    ConfigurationError,
    MeasurementError,
    ServiceDegradedError,
    ServiceSaturatedError,
    ServiceTimeoutError,
    SimulationError,
    WorkerCrashError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.instrument import MeasurementConfig, PerformanceDatabase
from repro.instrument.runner import Measurement
from repro.service import (
    PredictRequest,
    PredictionService,
    RetryPolicy,
    ServiceClient,
    serve_jsonl,
)
from repro.service.workers import execute_cell

MEASUREMENT = MeasurementConfig(repetitions=2, warmup=1)


def make_service(**kwargs):
    kwargs.setdefault("measurement", MEASUREMENT)
    return PredictionService(**kwargs)


def plan(*specs, seed=0):
    return FaultPlan(specs=tuple(specs), seed=seed)


class TestFaultSpec:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ConfigurationError, match="exactly one trigger"):
            FaultSpec(site="x")
        with pytest.raises(ConfigurationError, match="exactly one trigger"):
            FaultSpec(site="x", probability=0.5, every_nth=2)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            FaultSpec(site="", every_nth=1)
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSpec(site="x", probability=1.5)
        with pytest.raises(ConfigurationError, match="after"):
            FaultSpec(site="x", every_nth=1, after=-1)
        with pytest.raises(ConfigurationError, match="max_fires"):
            FaultSpec(site="x", every_nth=1, max_fires=0)

    def test_dict_roundtrip_rejects_unknown_fields(self):
        spec = FaultSpec(site="x", every_nth=3, after=2, max_fires=5, param=0.1)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigurationError, match="unknown fault spec"):
            FaultSpec.from_dict({"site": "x", "every_nth": 1, "bogus": 1})


class TestFaultPlan:
    def test_rejects_duplicate_sites(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            plan(
                FaultSpec(site="x", every_nth=1),
                FaultSpec(site="x", probability=0.5),
            )

    def test_json_roundtrip(self):
        original = plan(
            FaultSpec(site="worker.cell.crash", every_nth=3),
            FaultSpec(site="db.read.corrupt", probability=0.25),
            seed=17,
        )
        assert FaultPlan.from_json(original.to_json()) == original

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="invalid fault plan"):
            FaultPlan.from_json("not json")
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")


class TestDeterminism:
    def test_every_nth_cadence(self):
        p = plan(FaultSpec(site="x", every_nth=3, after=2))
        # hits 0,1 skipped; then every 3rd eligible hit fires.
        assert p.schedule("x", 8) == (
            False, False, False, False, True, False, False, True,
        )

    def test_same_seed_same_schedule(self):
        p = plan(FaultSpec(site="x", probability=0.3), seed=99)
        assert p.schedule("x", 200) == p.schedule("x", 200)

    def test_different_seed_different_schedule(self):
        a = plan(FaultSpec(site="x", probability=0.3), seed=1)
        b = plan(FaultSpec(site="x", probability=0.3), seed=2)
        assert a.schedule("x", 200) != b.schedule("x", 200)

    def test_per_site_streams_are_independent(self):
        # Interleaving checks on another site must not shift x's stream.
        spec_x = FaultSpec(site="x", probability=0.3)
        spec_y = FaultSpec(site="y", probability=0.7)
        solo = plan(spec_x, seed=5).schedule("x", 100)
        mixed = FaultInjector(plan(spec_x, spec_y, seed=5), record_metrics=False)
        interleaved = []
        for _ in range(100):
            mixed.check("y")
            interleaved.append(mixed.check("x") is not None)
        assert tuple(interleaved) == solo

    def test_max_fires_caps_total(self):
        p = plan(FaultSpec(site="x", every_nth=1, max_fires=2))
        assert p.schedule("x", 5) == (True, True, False, False, False)

    def test_schedule_is_pure(self):
        p = plan(FaultSpec(site="x", probability=0.5), seed=3)
        first = p.schedule("x", 50)
        # Consuming the schedule must not advance any shared stream.
        assert p.schedule("x", 50) == first


class TestInjector:
    def test_check_is_inert_without_a_plan(self):
        assert faults.get_injector() is None
        assert faults.check("worker.cell.crash") is None

    def test_active_scopes_installation(self):
        p = plan(FaultSpec(site="x", every_nth=1))
        with faults.active(p) as injector:
            assert faults.check("x") is not None
            assert injector.fires() == {"x": 1}
            assert injector.hits() == {"x": 1}
        assert faults.check("x") is None

    def test_fires_update_the_obs_counter(self):
        with faults.active(plan(FaultSpec(site="x", every_nth=2))) as injector:
            for _ in range(6):
                faults.check("x")
            assert injector.fires() == {"x": 3}
            counter = obs.get_registry().counter("fault_injected", site="x")
            assert counter.value == 3

    def test_thread_safety_of_hit_accounting(self):
        p = plan(FaultSpec(site="x", every_nth=4))
        with faults.active(p) as injector:
            def hammer():
                for _ in range(250):
                    faults.check("x")

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert injector.hits() == {"x": 1000}
            assert injector.fires() == {"x": 250}


class TestDegradedMode:
    def crash_service(self, **kwargs):
        return make_service(
            executor="inline",
            batch_window=0.0,
            crash_threshold=2,
            degraded_probe_every=3,
            **kwargs,
        )

    def test_consecutive_crashes_degrade_then_probe_recovers(self):
        with self.crash_service() as service:
            request = PredictRequest("BT", "S", 4)
            warm = service.predict(request)  # healthy warm-up, fills L1
            with faults.active(
                plan(FaultSpec(site="worker.cell.crash", every_nth=1))
            ):
                for nprocs in (1, 9):
                    with pytest.raises(WorkerCrashError):
                        service.predict(PredictRequest("BT", "S", nprocs))
                assert service.degraded
                assert not service.pool.healthy
                # Cached reports still serve in degraded mode.
                assert service.predict(request) == warm
                # Misses are rejected with the typed degraded error...
                with pytest.raises(ServiceDegradedError):
                    service.predict(PredictRequest("BT", "S", 16))
                with pytest.raises(ServiceDegradedError):
                    service.predict(PredictRequest("BT", "S", 16))
                # ...until the probe lets one through — still crashing here.
                with pytest.raises(WorkerCrashError):
                    service.predict(PredictRequest("BT", "S", 16))
                assert service.degraded
            # Fault cleared: reject, reject, then the probe succeeds and
            # restores full (non-degraded) service.
            raised = 0
            report = None
            for _ in range(3):
                try:
                    report = service.predict(PredictRequest("BT", "S", 25))
                except ServiceDegradedError:
                    raised += 1
            assert raised == 2 and report is not None
            assert not service.degraded
            stats = service.stats()
            assert stats["degraded_rejects"] == 4
            assert stats["worker_crashes"] == 3
            assert stats["worker_respawns"] == 3
            assert obs.get_registry().counter("worker_respawns").value == 3

    def test_success_resets_consecutive_crash_count(self):
        with self.crash_service() as service:
            with faults.active(
                plan(FaultSpec(site="worker.cell.crash", every_nth=1, max_fires=1))
            ):
                with pytest.raises(WorkerCrashError):
                    service.predict(PredictRequest("BT", "S", 4))
                assert service.pool.consecutive_crashes == 1
                service.predict(PredictRequest("BT", "S", 1))
                assert service.pool.consecutive_crashes == 0
                assert not service.degraded


class TestTimeouts:
    def test_deadline_raises_typed_timeout(self):
        release = threading.Event()

        def blocking(task, database=None):
            assert release.wait(timeout=30)
            return execute_cell(task, database)

        service = make_service(
            execute=blocking, batch_window=0.0, default_timeout=0.05
        )
        try:
            with pytest.raises(ServiceTimeoutError) as excinfo:
                service.predict(PredictRequest("BT", "S", 4))
            assert excinfo.value.timeout == 0.05
            assert service.stats()["timeouts"] == 1
            assert obs.get_registry().counter("request_timeout").value == 1
        finally:
            release.set()
            service.close()

    def test_explicit_timeout_overrides_default(self):
        release = threading.Event()

        def blocking(task, database=None):
            assert release.wait(timeout=30)
            return execute_cell(task, database)

        service = make_service(
            execute=blocking, batch_window=0.0, default_timeout=300.0
        )
        try:
            with pytest.raises(ServiceTimeoutError):
                service.predict(PredictRequest("BT", "S", 4), timeout=0.05)
        finally:
            release.set()
            service.close()

    def test_validation(self):
        with pytest.raises(Exception, match="default_timeout"):
            make_service(executor="inline", default_timeout=0)


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, max_delay=0.25, jitter=0.5, seed=7
        )
        first = list(policy.delays())
        assert first == list(policy.delays())
        assert len(first) == 3
        bases = [0.1, 0.2, 0.25]
        for delay, base in zip(first, bases):
            assert base <= delay <= base * 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError, match="jitter"):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError, match="delays"):
            RetryPolicy(base_delay=-1)


class FlakyService:
    """Service stand-in failing transiently N times, then succeeding."""

    def __init__(self, failures, exc_factory):
        self.failures = failures
        self.exc_factory = exc_factory
        self.calls = 0
        self.degraded = False

    def predict(self, request, timeout=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return "report"

    def close(self):
        pass


class TestClientRetry:
    def test_retries_saturation_with_backoff_honoring_hint(self):
        slept = []
        flaky = FlakyService(
            2, lambda: ServiceSaturatedError("full", retry_after=0.2)
        )
        client = ServiceClient(
            flaky,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
            sleep=slept.append,
        )
        assert client.predict("BT", "S", 4) == "report"
        assert flaky.calls == 3
        # retry_after=0.2 dominates both computed backoff delays.
        assert slept == [0.2, 0.2]
        assert obs.get_registry().counter("retry_attempts").value == 2

    def test_retries_worker_crashes(self):
        flaky = FlakyService(1, lambda: WorkerCrashError("died"))
        client = ServiceClient(
            flaky, retry=RetryPolicy(max_attempts=2), sleep=lambda _s: None
        )
        assert client.predict("BT", "S", 4) == "report"
        assert flaky.calls == 2

    def test_exhausted_attempts_reraise(self):
        flaky = FlakyService(99, lambda: WorkerCrashError("died"))
        client = ServiceClient(
            flaky, retry=RetryPolicy(max_attempts=3), sleep=lambda _s: None
        )
        with pytest.raises(WorkerCrashError):
            client.predict("BT", "S", 4)
        assert flaky.calls == 3

    def test_timeouts_and_degraded_are_not_retried(self):
        for exc_factory in (
            lambda: ServiceTimeoutError("late", timeout=1.0),
            lambda: ServiceDegradedError("degraded"),
        ):
            flaky = FlakyService(1, exc_factory)
            client = ServiceClient(
                flaky, retry=RetryPolicy(max_attempts=5), sleep=lambda _s: None
            )
            with pytest.raises((ServiceTimeoutError, ServiceDegradedError)):
                client.predict("BT", "S", 4)
            assert flaky.calls == 1


def sample_measurement(**overrides):
    fields = dict(
        benchmark="BT",
        problem_class="S",
        nprocs=4,
        kernels=("k1", "k2"),
        samples=(1.0, 1.1, 0.9),
        overhead=0.01,
    )
    fields.update(overrides)
    return Measurement(**fields)


class TestDatabaseIntegrity:
    def test_read_corruption_is_detected_purged_and_counted(self):
        with PerformanceDatabase() as db:
            db.store(sample_measurement())
            key = ("BT", "S", 4, ("k1", "k2"))
            with faults.active(
                plan(FaultSpec(site="db.read.corrupt", every_nth=1, max_fires=1))
            ):
                assert db.get(*key) is None  # corrupted read → miss
            counter = obs.get_registry().counter("cache_corruption_detected")
            assert counter.value == 1
            assert len(db) == 0  # the bad row was purged
            # Re-measuring after the purge works again.
            db.store(sample_measurement())
            assert db.get(*key) is not None

    def test_write_corruption_self_heals_via_retry(self):
        with PerformanceDatabase() as db:
            with faults.active(
                plan(FaultSpec(site="db.write.corrupt", every_nth=1, max_fires=1))
            ):
                stored = db.store_if_absent(sample_measurement())
            assert stored.samples == (1.0, 1.1, 0.9)
            assert len(db) == 1
            counter = obs.get_registry().counter("cache_corruption_detected")
            assert counter.value == 1

    def test_persistent_write_corruption_raises_typed_error(self):
        with PerformanceDatabase() as db:
            with faults.active(
                plan(FaultSpec(site="db.write.corrupt", every_nth=1))
            ):
                with pytest.raises(MeasurementError, match="integrity"):
                    db.store_if_absent(sample_measurement())

    def test_legacy_rows_without_checksum_are_accepted(self):
        with PerformanceDatabase() as db:
            db.store(sample_measurement())
            with db._lock:
                db._connection().execute("UPDATE measurements SET checksum=NULL")
                db._connection().commit()
            assert db.get("BT", "S", 4, ("k1", "k2")) is not None


class TestCacheDrop:
    def test_l1_drop_forces_recompute_not_garbage(self):
        with make_service(executor="inline", batch_window=0.0) as service:
            request = PredictRequest("BT", "S", 4)
            first = service.predict(request)
            with faults.active(
                plan(FaultSpec(site="cache.l1.drop", every_nth=1, max_fires=1))
            ):
                second = service.predict(request)
            # Recomputed (L2 replay), never a stale/corrupt object.
            assert second == first
            stats = service.stats()
            assert stats["l1_hits"] == 0
            assert stats["l2_hits"] == 1


class TestSimulatorFaults:
    def test_sim_run_error_raises_simulation_error(self):
        from repro.simmachine.engine import Simulator

        with faults.active(plan(FaultSpec(site="sim.run.error", every_nth=1))):
            with pytest.raises(SimulationError, match="injected"):
                Simulator().run()


class TestWireProtocol:
    def test_error_dict_carries_error_type(self):
        from repro.service.api import _error_dict

        payload = _error_dict(ServiceSaturatedError("full", retry_after=1.5))
        assert payload["ok"] is False
        assert payload["error_type"] == "ServiceSaturatedError"
        assert payload["retry_after"] == 1.5
        degraded = _error_dict(ServiceDegradedError("cache only"))
        assert degraded["error_type"] == "ServiceDegradedError"
        assert degraded["degraded"] is True

    def test_disconnect_drops_the_response_and_counts(self):
        import io
        import json

        with make_service(executor="inline", batch_window=0.0) as service:
            lines = [
                json.dumps({"benchmark": "BT", "problem_class": "S", "nprocs": 4}),
                json.dumps({"benchmark": "BT", "problem_class": "S", "nprocs": 4}),
            ]
            out = io.StringIO()
            with faults.active(
                plan(FaultSpec(site="api.disconnect", every_nth=1, max_fires=1))
            ):
                serve_jsonl(service, lines, out)
            responses = [
                json.loads(line) for line in out.getvalue().splitlines()
            ]
            # First response vanished with the "client"; second delivered.
            assert len(responses) == 1
            assert responses[0]["ok"] is True
            counter = obs.get_registry().counter("client_disconnects")
            assert counter.value == 1
