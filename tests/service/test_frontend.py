"""Frontend battery: routing, admission, aggregation, failover.

Runs the real wire path — async frontend, TCP, JSONL shard servers —
with :class:`InProcessShardManager` shards so tests can inject execute
hooks and reach into shard services, while exercising exactly the
routing/admission/merge logic that fronts the process fleet.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro import obs
from repro.instrument import MeasurementConfig
from repro.service import (
    InProcessShardManager,
    LineClient,
    PredictionService,
    RetryPolicy,
    ShardedServer,
)
from tests.chaos.harness import synthetic_execute


def _factory(shard_id, execute=synthetic_execute, **kwargs):
    defaults = dict(
        measurement=MeasurementConfig(repetitions=2, warmup=1, seed=0),
        max_workers=2,
        batch_window=0.001,
        execute=execute,
        shard_id=shard_id,
    )
    defaults.update(kwargs)
    return PredictionService(**defaults)


def _request(nprocs=4, chain_length=2, benchmark="BT", **extra):
    payload = {
        "benchmark": benchmark,
        "problem_class": "S",
        "nprocs": nprocs,
        "chain_length": chain_length,
    }
    payload.update(extra)
    return payload


@pytest.fixture
def fleet():
    """Three in-process shards behind a running frontend, plus a client."""
    manager = InProcessShardManager(
        [lambda i=i: _factory(i) for i in range(3)]
    )
    manager.start()
    server = ShardedServer(manager)
    host, port = server.start()
    client = LineClient(host, port)
    try:
        yield manager, server, client
    finally:
        client.close()
        server.stop()
        manager.stop()


def test_round_trip_with_correlation_id(fleet):
    _, _, client = fleet
    response = client.predict(_request(id="corr-42"))
    assert response["ok"]
    assert response["id"] == "corr-42"
    assert "predictions" in response and "actual" in response


def test_routing_is_deterministic_and_spreads_cells(fleet):
    manager, _, client = fleet
    for _ in range(5):
        assert client.predict(_request(nprocs=9))["ok"]
    # one cell -> exactly one shard saw requests for it
    owners = [
        shard_id
        for shard_id in manager.shard_ids
        if manager.service(shard_id).stats()["requests"] > 0
    ]
    assert len(owners) == 1
    # many distinct cells -> more than one shard participates
    for nprocs in (1, 4, 16, 25, 36, 49):
        for benchmark in ("BT", "SP"):
            assert client.predict(_request(nprocs, benchmark=benchmark))["ok"]
    for nprocs in (2, 8, 32):
        assert client.predict(_request(nprocs, benchmark="LU"))["ok"]
    touched = [
        shard_id
        for shard_id in manager.shard_ids
        if manager.service(shard_id).stats()["requests"] > 0
    ]
    assert len(touched) >= 2


def test_batch_reassembles_in_request_order(fleet):
    _, _, client = fleet
    items = [
        _request(nprocs, benchmark=benchmark, id=f"b-{i}")
        for i, (benchmark, nprocs) in enumerate(
            [("BT", 1), ("SP", 4), ("LU", 8), ("BT", 16), ("SP", 25)]
        )
    ]
    response = client.request(items)
    assert response["ok"]
    results = response["results"]
    assert [r["id"] for r in results] == [item["id"] for item in items]
    for item, result in zip(items, results):
        assert result["ok"]
        assert result["request"]["nprocs"] == item["nprocs"]
    # a malformed batch item degrades that slot only
    mixed = client.request([_request(id="good"), 17])
    assert mixed["results"][0]["ok"]
    assert not mixed["results"][1]["ok"]
    assert mixed["results"][1]["error_type"] == "ReproError"


def test_stats_nests_frontend_and_shard_views(fleet):
    manager, _, client = fleet
    assert client.predict(_request())["ok"]
    stats = client.stats()["stats"]
    assert stats["frontend"]["requests"] == 1
    assert stats["frontend"]["live_shards"] == 3
    assert sorted(stats["shards"]) == [str(s) for s in manager.shard_ids]
    assert sum(doc["requests"] for doc in stats["shards"].values()) == 1
    for shard_id, doc in stats["shards"].items():
        assert doc["shard"] == int(shard_id)


def test_metrics_merge_shard_counters_across_the_hop(fleet):
    _, _, client = fleet
    for nprocs in (1, 4, 9):
        assert client.predict(_request(nprocs))["ok"]
    first = client.request({"cmd": "metrics"})
    assert first["ok"]
    assert first["metrics"]["service_requests"] == 3
    # deltas, not snapshots: a second scrape must not double-count
    for nprocs in (16, 25):
        assert client.predict(_request(nprocs))["ok"]
    second = client.request({"cmd": "metrics"})
    assert second["metrics"]["service_requests"] == 5
    assert 'service_requests_total 5' in second["prometheus"]


def test_slo_report_merges_shards_and_judges_frontend(fleet):
    _, _, client = fleet
    for nprocs in (1, 4, 9, 16):
        assert client.predict(_request(nprocs))["ok"]
    report = client.request({"cmd": "slo"})["slo"]
    assert set(report) >= {"overall", "objectives", "shards", "frontend"}
    assert report["overall"]["requests"] == 4
    names = {objective["name"] for objective in report["objectives"]}
    assert "availability" in names
    front = report["frontend"]
    assert front["name"] == "frontend.availability"
    assert front["total"] == 4 and front["bad"] == 0
    assert front["met"] and front["burn_rate"] == 0.0


def test_counters_command_is_shard_internal(fleet):
    _, _, client = fleet
    response = client.request({"cmd": "counters"})
    assert not response["ok"]
    assert "shard-internal" in response["error"]


def test_invalid_lines_get_typed_errors(fleet):
    _, _, client = fleet
    bad = client.request_line("{not json")
    assert not bad["ok"] and bad["error_type"] == "ReproError"
    scalar = client.request_line("42")
    assert not scalar["ok"] and "object or array" in scalar["error"]


def test_pipelined_responses_come_back_in_order(fleet):
    """Interleaved hits and misses on one connection stay ordered."""
    _, _, client = fleet
    assert client.predict(_request(nprocs=1, id="warm"))["ok"]
    with socket.create_connection(client.address, timeout=30) as sock:
        fh = sock.makefile("rwb")
        lines = [
            json.dumps(_request(nprocs=36, id="cold-a")),
            json.dumps(_request(nprocs=1, id="warm")),
            json.dumps(_request(nprocs=49, id="cold-b")),
        ]
        fh.write(("\n".join(lines) + "\n").encode())
        fh.flush()
        answers = [json.loads(fh.readline()) for _ in lines]
    assert [a["id"] for a in answers] == ["cold-a", "warm", "cold-b"]
    assert all(a["ok"] for a in answers)


class _Gate:
    """An execute hook that blocks until released, then runs for real."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, task, database=None):
        self.entered.set()
        assert self.release.wait(timeout=30.0), "gate never released"
        return synthetic_execute(task, database)


@pytest.fixture
def saturable():
    """One gated shard behind a frontend that admits a single request."""
    gate = _Gate()
    manager = InProcessShardManager([lambda: _factory(0, execute=gate)])
    manager.start()
    server = ShardedServer(
        manager, admission_limit=1, conns_per_shard=1, replication=1
    )
    host, port = server.start()
    try:
        yield gate, server, (host, port)
    finally:
        gate.release.set()
        server.stop()
        manager.stop()


def test_admission_control_sheds_with_honest_retry_after(saturable):
    gate, server, address = saturable
    blocked = LineClient(*address)
    shedded = LineClient(*address)
    try:
        results = {}

        def occupy():
            results["blocked"] = blocked.request(_request(nprocs=4))

        worker = threading.Thread(target=occupy)
        worker.start()
        assert gate.entered.wait(timeout=30.0)
        # the admission slot is taken: a second cell is shed immediately
        shed = shedded.request(_request(nprocs=9))
        assert not shed["ok"]
        assert shed["error_type"] == "ServiceSaturatedError"
        assert shed["retry_after"] >= 0.05
        # batches shed atomically too
        batch = shedded.request([_request(nprocs=16), _request(nprocs=25)])
        kinds = {item["error_type"] for item in batch["results"]}
        assert kinds == {"ServiceSaturatedError"}
        gate.release.set()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert results["blocked"]["ok"]
        front = server.frontend.frontend_stats()
        assert front["shed"] >= 2
    finally:
        blocked.close()
        shedded.close()


def test_client_retry_honours_retry_after_and_recovers(saturable):
    gate, server, address = saturable
    blocked = LineClient(*address)
    sleeps = []

    def sleep_and_release(delay):
        sleeps.append(delay)
        gate.release.set()

    retrying = LineClient(
        *address,
        retry=RetryPolicy(max_attempts=6, base_delay=0.01),
        sleep=sleep_and_release,
    )
    try:
        worker = threading.Thread(
            target=lambda: blocked.request(_request(nprocs=4))
        )
        worker.start()
        assert gate.entered.wait(timeout=30.0)
        response = retrying.predict(_request(nprocs=9))
        worker.join(timeout=30.0)
        assert response["ok"]
        assert sleeps, "client never backed off"
        assert sleeps[0] >= 0.05  # the shed hint, not just the base delay
        # the shed shows up in the frontend's availability judgement
        report = retrying.request({"cmd": "slo"})["slo"]["frontend"]
        assert report["shed"] >= 1
        assert not report["met"]
        breaches = obs.get_registry().counter(
            "slo_breaches", objective="frontend.availability"
        )
        assert breaches.value >= 1
    finally:
        blocked.close()
        retrying.close()


def test_shard_death_yields_typed_errors_and_respawn(fleet):
    manager, server, client = fleet
    # find the shard that owns this cell, then take it down
    request = _request(nprocs=4)
    assert client.predict(request)["ok"]
    victim = next(
        shard_id
        for shard_id in manager.shard_ids
        if manager.service(shard_id).stats()["requests"] > 0
    )
    manager.kill(victim)
    # a retrying client rides through the outage
    response = LineClient(
        *client.address,
        retry=RetryPolicy(max_attempts=8, base_delay=0.05),
    ).predict(request)
    assert response["ok"]
    deadline = 100
    for _ in range(deadline):
        front = client.stats()["stats"]["frontend"]
        if front["shard_respawns"] >= 1 and front["live_shards"] == 3:
            break
        import time

        time.sleep(0.1)
    assert front["shard_deaths"] >= 1
    assert front["shard_respawns"] >= 1
    assert front["live_shards"] == 3
    registry = obs.get_registry()
    assert registry.counter("shard_deaths", shard=str(victim)).value >= 1
    assert registry.counter("shard_respawns", shard=str(victim)).value >= 1


def test_hot_cells_may_be_served_by_replicas(fleet):
    manager, server, client = fleet
    request = _request(nprocs=4)
    for _ in range(80):  # past the tracker's recompute cadence
        assert client.predict(request)["ok"]
    frontend = server.frontend
    key = "BT|S|4|None"
    assert key in frontend.hot.top()
    assert frontend.hot.is_hot(key)
    # the hot cell is eligible on >1 shard; replicas answer identically
    served = [
        shard_id
        for shard_id in manager.shard_ids
        if manager.service(shard_id).stats()["requests"] > 0
    ]
    actuals = {
        response["actual"]
        for response in (client.predict(request) for _ in range(5))
    }
    assert len(actuals) == 1
    assert len(served) >= 1
