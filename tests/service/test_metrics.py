"""Counters, gauges, histograms, and the stats snapshot."""

import threading

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    ServiceMetrics,
    render_stats,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_thread_safety(self):
        c = Counter("x")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
        assert g.high_water == 3

    def test_adjust(self):
        g = Gauge("depth")
        g.adjust(+2)
        g.adjust(-1)
        assert g.value == 1
        assert g.high_water == 2


class TestHistogram:
    def test_percentiles_on_known_data(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        # Extremes clamp to the exact observed min/max; interior
        # percentiles interpolate inside a log-scale bucket (documented
        # worst-case relative error ~11 %).
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5, rel=0.11)
        assert h.percentile(95) == pytest.approx(95.05, rel=0.11)
        assert h.mean == pytest.approx(50.5)  # mean stays exact
        assert h.max == 100.0
        assert h.count == 100

    def test_empty(self):
        h = Histogram("t")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        assert h.snapshot()["count"] == 0

    def test_memory_is_bounded_and_totals_exact(self):
        h = Histogram("t")
        slots = len(h._counts)
        for v in range(1, 100001):
            h.observe(float(v))
        assert h.count == 100000
        assert h.sum == pytest.approx(100001 * 100000 / 2)
        assert h.mean == pytest.approx(50000.5)
        assert len(h._counts) == slots  # O(1) memory regardless of volume

    def test_bucket_counts_are_cumulative_and_end_at_inf(self):
        h = Histogram("t", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        pairs = h.bucket_counts()
        assert pairs[-1] == (float("inf"), 4)
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)  # cumulative, never decreasing

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(3.0, 2.0))  # not increasing
        with pytest.raises(ValueError):
            Histogram("t").percentile(101)


class TestServiceMetrics:
    def test_stats_snapshot_shape(self):
        m = ServiceMetrics(queue_depth_fn=lambda: 3)
        m.requests.inc(4)
        m.l1_hits.inc(2)
        m.record_batch(2)
        m.latency.observe(0.5)
        stats = m.stats()
        assert stats["requests"] == 4
        assert stats["queue_depth"] == 3
        assert stats["batch_size"]["max"] == 2.0
        assert stats["latency_seconds"]["count"] == 1
        assert set(stats["latency_seconds"]) == {"count", "mean", "p50", "p95", "max"}

    def test_cache_hit_ratio(self):
        m = ServiceMetrics()
        assert m.cache_hit_ratio() == 0.0
        m.requests.inc(10)
        m.l1_hits.inc(5)
        m.l2_hits.inc(2)
        m.coalesced.inc(1)
        m.misses.inc(2)
        assert m.cache_hit_ratio() == pytest.approx(0.8)

    def test_render_stats_is_line_per_signal(self):
        m = ServiceMetrics()
        m.requests.inc()
        text = render_stats(m.stats())
        assert "requests: 1" in text
        assert "latency_seconds:" in text
