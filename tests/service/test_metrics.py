"""Counters, gauges, histograms, and the stats snapshot."""

import threading

import pytest

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    ServiceMetrics,
    render_stats,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_thread_safety(self):
        c = Counter("x")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
        assert g.high_water == 3

    def test_adjust(self):
        g = Gauge("depth")
        g.adjust(+2)
        g.adjust(-1)
        assert g.value == 1
        assert g.high_water == 2


class TestHistogram:
    def test_percentiles_on_known_data(self):
        h = Histogram("t")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.mean == pytest.approx(50.5)
        assert h.max == 100.0
        assert h.count == 100

    def test_empty(self):
        h = Histogram("t")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        assert h.snapshot()["count"] == 0

    def test_capacity_bounds_memory_but_not_totals(self):
        h = Histogram("t", capacity=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(49.5)
        assert len(h._samples) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("t", capacity=0)
        with pytest.raises(ValueError):
            Histogram("t").percentile(101)


class TestServiceMetrics:
    def test_stats_snapshot_shape(self):
        m = ServiceMetrics(queue_depth_fn=lambda: 3)
        m.requests.inc(4)
        m.l1_hits.inc(2)
        m.record_batch(2)
        m.latency.observe(0.5)
        stats = m.stats()
        assert stats["requests"] == 4
        assert stats["queue_depth"] == 3
        assert stats["batch_size"]["max"] == 2.0
        assert stats["latency_seconds"]["count"] == 1
        assert set(stats["latency_seconds"]) == {"count", "mean", "p50", "p95", "max"}

    def test_cache_hit_ratio(self):
        m = ServiceMetrics()
        assert m.cache_hit_ratio() == 0.0
        m.requests.inc(10)
        m.l1_hits.inc(5)
        m.l2_hits.inc(2)
        m.coalesced.inc(1)
        m.misses.inc(2)
        assert m.cache_hit_ratio() == pytest.approx(0.8)

    def test_render_stats_is_line_per_signal(self):
        m = ServiceMetrics()
        m.requests.inc()
        text = render_stats(m.stats())
        assert "requests: 1" in text
        assert "latency_seconds:" in text
