"""Property battery for the consistent-hash shard ring.

The ring is the sharded frontend's load-bearing wall: if placement is
unbalanced the fleet hot-spots, and if membership changes remap more
than the departed shard's arcs, every kill/respawn invalidates warm
caches fleet-wide. Both properties are checked here with Hypothesis
over 1–16 shards rather than a couple of hand-picked sizes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service.shard import HashRing, HotCellTracker, route_key

#: A fixed fleet-sized key population; hashing is deterministic, so the
#: property checks are exact for this set, not statistical estimates.
KEYS = [
    f"{bench}|{cls}|{nprocs}|{seed}"
    for bench in ("BT", "SP", "LU", "CG", "MG")
    for cls in ("S", "W", "A", "B")
    for nprocs in (1, 4, 9, 16, 25, 36, 49, 64, 81, 100)
    for seed in range(10)
]


def _placement(ring: HashRing) -> dict[str, int]:
    return {key: ring.shard_for(key) for key in KEYS}


def _counts(placement: dict[str, int]) -> dict[int, int]:
    counts: dict[int, int] = {}
    for shard in placement.values():
        counts[shard] = counts.get(shard, 0) + 1
    return counts


@settings(max_examples=16, deadline=None)
@given(n=st.integers(min_value=1, max_value=16))
def test_key_distribution_is_balanced(n):
    """No shard holds more than 2x (or less than a third of) its share."""
    ring = HashRing(range(n), vnodes=128)
    counts = _counts(_placement(ring))
    assert set(counts) <= set(range(n))
    mean = len(KEYS) / n
    assert max(counts.values()) <= 2.0 * mean
    assert min(counts.values()) >= mean / 3.0
    # every shard serves something
    assert len(counts) == n


@settings(max_examples=16, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    victim_index=st.integers(min_value=0, max_value=15),
)
def test_removing_a_shard_remaps_only_its_keys(n, victim_index):
    """The minimal-disruption property that makes kill/respawn cheap.

    Dropping one shard moves exactly the keys it held — every other
    key's placement is untouched — and the moved fraction is about 1/n.
    """
    victim = victim_index % n
    ring = HashRing(range(n), vnodes=128)
    before = _placement(ring)
    ring.remove(victim)
    after = _placement(ring)
    moved = [key for key in KEYS if before[key] != after[key]]
    assert all(before[key] == victim for key in moved)
    assert all(after[key] != victim for key in KEYS)
    # everything the victim held moved, nothing else did
    assert len(moved) == sum(1 for s in before.values() if s == victim)
    assert len(moved) <= 2.0 * len(KEYS) / n


@settings(max_examples=16, deadline=None)
@given(n=st.integers(min_value=1, max_value=15))
def test_adding_a_shard_steals_only_its_arcs(n):
    """Growth is minimal-disruption too: moved keys all land on the
    newcomer, and the newcomer takes roughly its fair 1/(n+1) share."""
    ring = HashRing(range(n), vnodes=128)
    before = _placement(ring)
    newcomer = n
    ring.add(newcomer)
    after = _placement(ring)
    moved = [key for key in KEYS if before[key] != after[key]]
    assert all(after[key] == newcomer for key in moved)
    assert len(moved) <= 2.0 * len(KEYS) / (n + 1)
    assert len(moved) >= len(KEYS) / (3.0 * (n + 1))


@settings(max_examples=16, deadline=None)
@given(n=st.integers(min_value=1, max_value=16))
def test_placement_is_independent_of_insertion_order(n):
    forward = HashRing(range(n), vnodes=128)
    backward = HashRing(reversed(range(n)), vnodes=128)
    assert _placement(forward) == _placement(backward)


@settings(max_examples=16, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=16),
    want=st.integers(min_value=1, max_value=4),
)
def test_preference_lists_are_distinct_and_anchored(n, want):
    """Replica candidates are distinct shards led by the primary."""
    ring = HashRing(range(n), vnodes=64)
    for key in KEYS[:50]:
        preference = ring.preference(key, want)
        assert len(preference) == min(want, n)
        assert len(set(preference)) == len(preference)
        assert preference[0] == ring.shard_for(key)


def test_ring_membership_bookkeeping():
    ring = HashRing()
    assert len(ring) == 0
    ring.add(3)
    ring.add(3)  # idempotent
    ring.add(1)
    assert ring.shard_ids == (1, 3)
    assert 3 in ring and 2 not in ring
    ring.remove(3)
    ring.remove(3)  # idempotent
    assert ring.shard_ids == (1,)
    assert all(ring.shard_for(key) == 1 for key in KEYS[:20])


def test_empty_ring_raises_typed_error():
    ring = HashRing()
    with pytest.raises(ServiceError):
        ring.shard_for("BT|S|4|0")
    with pytest.raises(ServiceError):
        ring.preference("BT|S|4|0", 2)


def test_route_key_ignores_chain_length():
    """All chain lengths of one cell must land on one shard, so its
    batcher can coalesce them into a single measurement plan."""
    base = {"benchmark": "BT", "problem_class": "S", "nprocs": 4, "seed": 0}
    keys = {route_key({**base, "chain_length": c}) for c in (2, 3, 4)}
    assert len(keys) == 1
    # malformed requests still route somewhere (the shard rejects them)
    assert isinstance(route_key({}), str)


def test_hot_cell_tracker_promotes_frequent_keys():
    tracker = HotCellTracker(k=2, recompute_every=10)
    for i in range(100):
        tracker.observe("hot-a")
        tracker.observe("hot-b")
        tracker.observe(f"cold-{i}")
    assert tracker.is_hot("hot-a")
    assert tracker.is_hot("hot-b")
    assert not tracker.is_hot("cold-5")
    assert set(tracker.top()) == {"hot-a", "hot-b"}


def test_hot_cell_tracker_bounds_memory():
    tracker = HotCellTracker(k=2, recompute_every=8, max_keys=64)
    for i in range(10_000):
        tracker.observe(f"key-{i}")
        tracker.observe("always")
    assert len(tracker._counts) <= 64
    assert tracker.is_hot("always")
