"""The SLO monitor: objectives, rolling windows, budget burn, wiring."""

import json

import pytest

from repro.analytic.tiers import TIER_ANALYTIC, TIER_SIMULATION
from repro.errors import ServiceError
from repro.service.metrics import ServiceMetrics
from repro.service.slo import (
    DEFAULT_OBJECTIVES,
    SLOMonitor,
    SLOObjective,
    _count_above,
    parse_objectives,
)


def _latency_objective(threshold=0.1, target=0.9, tier=None):
    return SLOObjective(
        name="lat", kind="latency", target=target, threshold=threshold,
        tier=tier,
    )


def _error_objective(target=0.9):
    return SLOObjective(name="err", kind="error_rate", target=target)


class TestObjective:
    def test_validation(self):
        with pytest.raises(ServiceError):
            SLOObjective(name="x", kind="weird", target=0.9)
        with pytest.raises(ServiceError):
            SLOObjective(name="x", kind="latency", target=1.5, threshold=1)
        with pytest.raises(ServiceError):
            SLOObjective(name="x", kind="latency", target=0.9)  # no threshold
        with pytest.raises(ServiceError):
            SLOObjective(
                name="x", kind="latency", target=0.9, threshold=1,
                tier="warp",
            )

    def test_parse_objectives(self):
        objectives = parse_objectives(
            [
                {
                    "name": "a",
                    "kind": "latency",
                    "target": 0.95,
                    "threshold": 0.5,
                    "tier": TIER_ANALYTIC,
                },
                {"name": "b", "kind": "error_rate", "target": 0.99},
            ]
        )
        assert objectives[0].tier == TIER_ANALYTIC
        assert objectives[1].threshold is None
        with pytest.raises(ServiceError):
            parse_objectives([{"name": "c", "kind": "latency"}])
        with pytest.raises(ServiceError):
            parse_objectives([{"name": "c", "kind": "latency",
                               "target": 0.9, "threshold": 1, "bogus": 1}])


class TestCountAbove:
    def test_split_bucket_interpolates(self):
        # All ten samples in the (1, 10] bucket; threshold at the log
        # midpoint splits them evenly.
        bounds, counts = (1.0, 10.0), (0, 10, 0)
        assert _count_above(bounds, counts, 10**0.5) == pytest.approx(5.0)
        assert _count_above(bounds, counts, 0.5) == pytest.approx(10.0)
        assert _count_above(bounds, counts, 50.0) == pytest.approx(0.0)

    def test_overflow_bucket_counts_fully(self):
        bounds, counts = (1.0, 10.0), (0, 0, 3)
        assert _count_above(bounds, counts, 100.0) == pytest.approx(3.0)


class TestMonitor:
    def test_window_validation(self):
        with pytest.raises(ServiceError):
            SLOMonitor(ServiceMetrics(), window=1)
        with pytest.raises(ServiceError):
            SLOMonitor(
                ServiceMetrics(),
                objectives=(_error_objective(), _error_objective()),
            )

    def test_empty_service_meets_everything(self):
        monitor = SLOMonitor(ServiceMetrics())
        report = monitor.observe()
        assert report["breaches"] == 0
        assert all(o["met"] for o in report["objectives"])
        assert report["overall"]["requests"] == 0
        assert json.dumps(report)  # wire-serialisable

    def test_tier_quantiles_from_window(self):
        metrics = ServiceMetrics()
        monitor = SLOMonitor(metrics, objectives=())
        for _ in range(100):
            metrics.record_tier(TIER_ANALYTIC, 0.001)
        for _ in range(100):
            metrics.record_tier(TIER_SIMULATION, 0.5)
        report = monitor.observe()
        analytic = report["tiers"][TIER_ANALYTIC]
        assert analytic["requests"] == 100
        assert analytic["p50"] == pytest.approx(0.001, rel=0.3)
        sim = report["tiers"][TIER_SIMULATION]
        assert sim["p95"] == pytest.approx(0.5, rel=0.3)
        assert {"p50", "p95", "p99"} <= set(sim)

    def test_window_is_rolling(self):
        metrics = ServiceMetrics()
        monitor = SLOMonitor(metrics, objectives=(), window=2)
        for _ in range(10):
            metrics.record_tier(TIER_ANALYTIC, 0.001)
        monitor.observe()
        monitor.observe()
        # Nothing new since the previous snapshot: with window=2 the old
        # traffic has rolled out entirely.
        report = monitor.observe()
        assert report["tiers"][TIER_ANALYTIC]["requests"] == 0

    def test_latency_objective_breach_and_burn(self):
        metrics = ServiceMetrics()
        monitor = SLOMonitor(
            metrics, objectives=(_latency_objective(threshold=0.1),)
        )
        for _ in range(8):
            metrics.latency.observe(0.01)
        for _ in range(2):
            metrics.latency.observe(5.0)  # 20% slow >> 10% budget
        report = monitor.observe()
        verdict = report["objectives"][0]
        assert not verdict["met"]
        assert verdict["burn_rate"] > 1.0
        assert report["breaches"] == 1
        # The judgement is mirrored into registry instruments.
        snap = metrics.registry.snapshot()
        assert snap["slo_breaches{objective=lat}"] == 1
        assert snap["slo_burn_rate{objective=lat}"] > 1.0

    def test_error_rate_objective(self):
        metrics = ServiceMetrics()
        monitor = SLOMonitor(metrics, objectives=(_error_objective(),))
        for _ in range(20):
            metrics.requests.inc()
        metrics.errors.inc(3)
        metrics.timeouts.inc(2)  # 25% bad >> 10% budget
        report = monitor.observe()
        verdict = report["objectives"][0]
        assert verdict["bad"] == 5
        assert verdict["compliance"] == pytest.approx(0.75)
        assert not verdict["met"]
        # Recovery: a clean follow-up window meets the objective again.
        for _ in range(50):
            metrics.requests.inc()
        assert monitor.observe()["objectives"][0]["met"]

    def test_default_objectives_cover_latency_and_errors(self):
        kinds = {o.kind for o in DEFAULT_OBJECTIVES}
        assert kinds == {"latency", "error_rate"}
        tiers = {o.tier for o in DEFAULT_OBJECTIVES if o.kind == "latency"}
        assert TIER_ANALYTIC in tiers


class TestServiceWiring:
    def test_slo_report_and_wire_command(self):
        from repro.service.api import handle_line
        from repro.service.engine import PredictionService

        with PredictionService(max_workers=1) as service:
            report = service.slo_report()
            assert report["breaches"] == 0
            response = json.loads(handle_line(service, '{"cmd": "slo"}'))
            assert response["ok"]
            assert "objectives" in response["slo"]
            bare = json.loads(handle_line(service, "slo"))
            assert bare["ok"]

    def test_custom_objectives_flow_through(self):
        from repro.service.engine import PredictionService

        with PredictionService(
            max_workers=1,
            slo_objectives=(_error_objective(target=0.5),),
        ) as service:
            report = service.slo_report()
            assert [o["name"] for o in report["objectives"]] == ["err"]
