"""Worker pool backpressure and cell execution."""

import threading

import pytest

from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceSaturatedError,
)
from repro.instrument import MeasurementConfig, PerformanceDatabase
from repro.instrument.sweeps import CampaignPlan
from repro.service.cache import ACTUAL_KEY
from repro.service.workers import CellTask, WorkerPool, execute_cell
from repro.simmachine import ibm_sp_argonne


def cell_task(chain_lengths=(2,), nprocs=4):
    return CellTask(
        plan=CampaignPlan.for_cell("BT", "S", nprocs, chain_lengths),
        machine=ibm_sp_argonne(),
        measurement=MeasurementConfig(repetitions=2, warmup=1),
    )


class TestCellTask:
    def test_rejects_multi_cell_plans(self):
        plan = CampaignPlan("BT", ("S",), (1, 4), (2,))
        with pytest.raises(ServiceError, match="single-cell"):
            CellTask(
                plan=plan,
                machine=ibm_sp_argonne(),
                measurement=MeasurementConfig(repetitions=2),
            )

    def test_for_cell_sorts_and_dedupes_chain_lengths(self):
        plan = CampaignPlan.for_cell("BT", "S", 4, (3, 2, 3))
        assert plan.chain_lengths == (2, 3)


class TestExecuteCell:
    def test_runs_and_archives_everything(self):
        with PerformanceDatabase() as db:
            outcome = execute_cell(cell_task(), database=db)
            assert outcome.actual > 0
            assert outcome.simulations > 0
            assert outcome.reused == 0
            # 5 isolated + 2 one-shots + 5 pairs + the application total.
            assert len(db) == 13
            assert db.get("BT", "S", 4, ACTUAL_KEY) is not None

    def test_warm_database_runs_zero_simulations(self):
        with PerformanceDatabase() as db:
            first = execute_cell(cell_task(), database=db)
            second = execute_cell(cell_task(), database=db)
            assert second.simulations == 0
            assert second.reused == first.simulations
            assert second.actual == pytest.approx(first.actual)
            assert second.inputs == first.inputs

    def test_shared_empty_database_is_used_not_replaced(self):
        # Regression: PerformanceDatabase.__len__ makes empty stores falsy;
        # execute_cell must adopt the shared store by identity.
        with PerformanceDatabase() as db:
            execute_cell(cell_task(), database=db)
            assert len(db) > 0


class TestWorkerPool:
    def test_inline_executes_synchronously(self):
        pool = WorkerPool(kind="inline")
        future = pool.submit(lambda x: x * 2, 21)
        assert future.result(timeout=0) == 42
        pool.shutdown()

    def test_inline_relays_exceptions(self):
        pool = WorkerPool(kind="inline")
        future = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=0)
        pool.shutdown()

    def test_thread_pool_runs_work(self):
        pool = WorkerPool(max_workers=2, kind="thread")
        futures = [pool.submit(lambda i=i: i * i) for i in range(5)]
        assert [f.result(timeout=5) for f in futures] == [0, 1, 4, 9, 16]
        pool.shutdown()

    def test_saturation_rejects_with_retry_after(self):
        release = threading.Event()
        pool = WorkerPool(
            max_workers=1, queue_depth=2, kind="thread", retry_after=2.5
        )
        blocked = [pool.submit(release.wait, 10) for _ in range(2)]
        assert pool.saturated
        with pytest.raises(ServiceSaturatedError) as exc:
            pool.submit(lambda: None)
        assert exc.value.retry_after == 2.5
        release.set()
        for f in blocked:
            f.result(timeout=5)
        assert not pool.saturated
        pool.shutdown()

    def test_outstanding_drains_after_completion(self):
        pool = WorkerPool(max_workers=1, queue_depth=4, kind="thread")
        fut = pool.submit(lambda: "done")
        assert fut.result(timeout=5) == "done"
        for _ in range(100):
            if pool.outstanding == 0:
                break
            threading.Event().wait(0.01)
        assert pool.outstanding == 0
        pool.shutdown()

    def test_closed_pool_rejects(self):
        pool = WorkerPool(kind="inline")
        pool.shutdown()
        with pytest.raises(ServiceClosedError):
            pool.submit(lambda: None)

    def test_validation(self):
        with pytest.raises(ServiceError):
            WorkerPool(max_workers=0)
        with pytest.raises(ServiceError):
            WorkerPool(queue_depth=0)
        with pytest.raises(ServiceError):
            WorkerPool(kind="fiber")
        with pytest.raises(ServiceError):
            WorkerPool(crash_threshold=0)

    def test_shutdown_waits_for_in_flight_work(self):
        entered = threading.Event()
        release = threading.Event()
        done = []

        def slow():
            entered.set()
            assert release.wait(timeout=10)
            done.append(True)
            return "finished"

        pool = WorkerPool(max_workers=1, kind="thread")
        future = pool.submit(slow)
        assert entered.wait(timeout=5)

        shutter = threading.Thread(target=pool.shutdown, kwargs={"wait": True})
        shutter.start()
        assert shutter.is_alive()  # blocked on the in-flight cell
        release.set()
        shutter.join(timeout=10)
        assert not shutter.is_alive()
        assert future.result(timeout=0) == "finished"
        assert done == [True]

    def test_shutdown_nowait_returns_immediately(self):
        release = threading.Event()
        pool = WorkerPool(max_workers=1, kind="thread")
        pool.submit(release.wait, 10)
        pool.shutdown(wait=False)  # must not block on the running cell
        release.set()


class TestWorkerHealth:
    def crash(self):
        from repro.errors import WorkerCrashError

        raise WorkerCrashError("synthetic death")

    def test_consecutive_crashes_flip_health(self):
        pool = WorkerPool(max_workers=1, kind="inline", crash_threshold=2)
        for expected in (1, 2):
            with pytest.raises(Exception):
                pool.submit(self.crash).result(timeout=0)
            assert pool.consecutive_crashes == expected
        assert not pool.healthy
        assert pool.crashes == 2
        assert pool.respawns == 2
        pool.shutdown()

    def test_success_restores_health(self):
        pool = WorkerPool(max_workers=1, kind="inline", crash_threshold=1)
        with pytest.raises(Exception):
            pool.submit(self.crash).result(timeout=0)
        assert not pool.healthy
        pool.submit(lambda: "ok").result(timeout=0)
        assert pool.healthy
        assert pool.consecutive_crashes == 0
        assert pool.crashes == 1  # the total is not reset
        pool.shutdown()

    def test_ordinary_errors_are_not_worker_deaths(self):
        pool = WorkerPool(max_workers=1, kind="inline", crash_threshold=1)
        with pytest.raises(ZeroDivisionError):
            pool.submit(lambda: 1 / 0).result(timeout=0)
        assert pool.healthy
        assert pool.crashes == 0
        pool.shutdown()

    def test_thread_pool_counts_crashes_and_respawns(self):
        import time as _time

        from repro import obs

        pool = WorkerPool(max_workers=1, kind="thread", crash_threshold=3)
        futures = [pool.submit(self.crash) for _ in range(2)]
        for f in futures:
            with pytest.raises(Exception):
                f.result(timeout=5)
        # _release runs via done-callbacks; give them a beat to land.
        for _ in range(200):
            if pool.crashes == 2:
                break
            _time.sleep(0.005)
        assert pool.crashes == 2
        assert pool.respawns == 2
        assert pool.healthy  # threshold is 3
        assert obs.get_registry().counter("worker_respawns").value == 2
        pool.shutdown()
