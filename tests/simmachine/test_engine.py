"""Discrete-event engine: events, timeouts, processes, determinism."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simmachine.engine import AllOf, Simulator, Timeout


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_carries_value(self, sim):
        ev = sim.event().succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_double_trigger_raises(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_trigger_at_fires_later(self, sim):
        ev = sim.event()
        ev.trigger_at("hello", 2.5)
        seen = []
        ev.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(2.5, "hello")]

    def test_trigger_at_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().trigger_at(None, -1.0)

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event().succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_fail_propagates_exception_to_process(self, sim):
        ev = sim.event()

        def proc():
            with pytest.raises(ValueError, match="boom"):
                yield ev
            return "handled"

        p = sim.process(proc())
        ev.fail(ValueError("boom"))
        sim.run()
        assert p.value == "handled"


class TestTimeout:
    def test_advances_clock(self, sim):
        Timeout(sim, 5.0)
        assert sim.run() == 5.0

    def test_zero_delay_allowed(self, sim):
        Timeout(sim, 0.0)
        assert sim.run() == 0.0

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            Timeout(sim, -0.1)

    def test_carries_value(self, sim):
        results = []

        def proc():
            v = yield sim.timeout(1.0, value="done")
            results.append(v)

        sim.process(proc())
        sim.run()
        assert results == ["done"]

    def test_ordering_is_time_then_fifo(self, sim):
        order = []
        for delay, tag in [(2.0, "b"), (1.0, "a"), (2.0, "c")]:
            sim.timeout(delay).add_callback(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]


class TestAllOf:
    def test_empty_fires_immediately(self, sim):
        ev = AllOf(sim, [])
        assert ev.triggered
        assert ev.value == []

    def test_collects_values_in_order(self, sim):
        t1 = sim.timeout(2.0, value="late")
        t2 = sim.timeout(1.0, value="early")
        done = []

        def proc():
            vals = yield sim.all_of([t1, t2])
            done.append((sim.now, vals))

        sim.process(proc())
        sim.run()
        assert done == [(2.0, ["late", "early"])]

    def test_failure_propagates(self, sim):
        bad = sim.event()
        good = sim.timeout(1.0)

        def proc():
            with pytest.raises(RuntimeError):
                yield sim.all_of([good, bad])

        sim.process(proc())
        bad.fail(RuntimeError("child failed"))
        sim.run()


class TestProcess:
    def test_returns_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return 99

        p = sim.process(proc())
        assert sim.run_all([p]) == [99]

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError, match="generator"):
            sim.process(lambda: None)

    def test_yielding_non_event_fails(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="yielded int"):
            sim.run()

    def test_crash_surfaces(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        sim.process(proc())
        with pytest.raises(KeyError):
            sim.run()

    def test_two_processes_interleave(self, sim):
        trace = []

        def proc(name, delays):
            for d in delays:
                yield sim.timeout(d)
                trace.append((sim.now, name))

        sim.process(proc("a", [1.0, 3.0]))
        sim.process(proc("b", [2.0, 0.5]))
        sim.run()
        assert trace == [(1.0, "a"), (2.0, "b"), (2.5, "b"), (4.0, "a")]

    def test_process_completion_is_event(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "child-done"

        def parent():
            result = yield sim.process(child())
            return f"saw {result}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "saw child-done"


class TestDeadlock:
    def test_blocked_process_raises_deadlock(self, sim):
        ev = sim.event()  # never triggered

        def proc():
            yield ev

        sim.process(proc(), name="stuck-rank")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert exc.value.blocked == ["stuck-rank"]

    def test_deadlock_lists_all_blocked(self, sim):
        ev = sim.event()

        def proc():
            yield ev

        for i in range(3):
            sim.process(proc(), name=f"r{i}")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert exc.value.blocked == ["r0", "r1", "r2"]

    def test_completed_processes_do_not_deadlock(self, sim):
        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        assert sim.run() == 1.0


class TestRun:
    def test_run_until_stops_clock(self, sim):
        sim.timeout(10.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.run() == 10.0

    def test_event_count_tracked(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_processed == 5

    def test_determinism_same_structure(self):
        def build():
            s = Simulator()
            log = []

            def proc(n):
                for i in range(5):
                    yield s.timeout(0.1 * (n + 1))
                    log.append((round(s.now, 10), n))

            for n in range(4):
                s.process(proc(n))
            s.run()
            return log

        assert build() == build()


class TestAnyOf:
    def test_first_completion_wins(self):
        from repro.simmachine.engine import AnyOf

        sim = Simulator()
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        seen = []

        def proc():
            result = yield AnyOf(sim, [slow, fast])
            seen.append((sim.now, result))

        sim.process(proc())
        sim.run()
        assert seen == [(1.0, (1, "fast"))]

    def test_empty_rejected(self):
        from repro.simmachine.engine import AnyOf

        sim = Simulator()
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_failure_of_first_child_propagates(self):
        sim = Simulator()
        bad = sim.event()
        slow = sim.timeout(10.0)

        def proc():
            with pytest.raises(RuntimeError):
                yield sim.any_of([bad, slow])

        sim.process(proc())
        bad.fail(RuntimeError("boom"))
        sim.run()

    def test_later_completions_harmless(self):
        sim = Simulator()
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")

        def proc():
            idx, val = yield sim.any_of([a, b])
            assert (idx, val) == (0, "a")
            # b fires later without error.
            yield b
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"
