"""Discrete-event engine: events, timeouts, processes, determinism.

Every test runs against *both* engine backends — the pure-Python
reference (``repro.simmachine.engine``) and, when built, the compiled
extension (``repro.simmachine._cengine``) — via the ``eng`` fixture.
Pure-only environments skip the compiled parametrization with an
explicit marker rather than silently shrinking coverage.
"""

import importlib.util

import pytest

from repro.errors import DeadlockError, SimulationError

HAVE_CENGINE = (
    importlib.util.find_spec("repro.simmachine._cengine") is not None
)

requires_cengine = pytest.mark.skipif(
    not HAVE_CENGINE,
    reason="compiled engine extension not built (pure-only environment); "
    "build with 'REPRO_BUILD_EXT=1 python setup.py build_ext --inplace'",
)


@pytest.fixture(
    params=[
        "pure",
        pytest.param("compiled", marks=requires_cengine),
    ]
)
def eng(request):
    """The engine module under test (both backends when available)."""
    if request.param == "compiled":
        from repro.simmachine import _cengine

        return _cengine
    from repro.simmachine import engine

    return engine


@pytest.fixture
def sim(eng):
    return eng.Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_succeed_carries_value(self, sim):
        ev = sim.event().succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_double_trigger_raises(self, sim):
        ev = sim.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_trigger_at_fires_later(self, sim):
        ev = sim.event()
        ev.trigger_at("hello", 2.5)
        seen = []
        ev.add_callback(lambda e: seen.append((sim.now, e.value)))
        sim.run()
        assert seen == [(2.5, "hello")]

    def test_trigger_at_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().trigger_at(None, -1.0)

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event().succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_many_callbacks_run_in_registration_order(self, sim):
        ev = sim.event()
        ev.trigger_at("v", 1.0)
        seen = []
        for i in range(4):
            ev.add_callback(lambda e, i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3]

    def test_fail_propagates_exception_to_process(self, sim):
        ev = sim.event()

        def proc():
            with pytest.raises(ValueError, match="boom"):
                yield ev
            return "handled"

        p = sim.process(proc())
        ev.fail(ValueError("boom"))
        sim.run()
        assert p.value == "handled"

    def test_callback_exception_propagates_out_of_run(self, sim):
        ev = sim.event().succeed()

        def bad(event):
            raise RuntimeError("callback exploded")

        ev.add_callback(bad)
        with pytest.raises(RuntimeError, match="callback exploded"):
            sim.run()


class TestTimeout:
    def test_advances_clock(self, eng, sim):
        eng.Timeout(sim, 5.0)
        assert sim.run() == 5.0

    def test_zero_delay_allowed(self, eng, sim):
        eng.Timeout(sim, 0.0)
        assert sim.run() == 0.0

    def test_negative_delay_raises(self, eng, sim):
        with pytest.raises(SimulationError):
            eng.Timeout(sim, -0.1)

    def test_negative_delay_message_repr(self, eng, sim):
        with pytest.raises(SimulationError) as exc:
            eng.Timeout(sim, -0.1)
        assert str(exc.value) == "negative timeout delay -0.1"

    def test_carries_value(self, sim):
        results = []

        def proc():
            v = yield sim.timeout(1.0, value="done")
            results.append(v)

        sim.process(proc())
        sim.run()
        assert results == ["done"]

    def test_ordering_is_time_then_fifo(self, sim):
        order = []
        for delay, tag in [(2.0, "b"), (1.0, "a"), (2.0, "c")]:
            sim.timeout(delay).add_callback(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]


class TestAllOf:
    def test_empty_fires_immediately(self, eng, sim):
        ev = eng.AllOf(sim, [])
        assert ev.triggered
        assert ev.value == []

    def test_collects_values_in_order(self, sim):
        t1 = sim.timeout(2.0, value="late")
        t2 = sim.timeout(1.0, value="early")
        done = []

        def proc():
            vals = yield sim.all_of([t1, t2])
            done.append((sim.now, vals))

        sim.process(proc())
        sim.run()
        assert done == [(2.0, ["late", "early"])]

    def test_already_processed_children_count(self, sim):
        t1 = sim.timeout(1.0, value="a")
        sim.run()
        assert t1.processed
        t2 = sim.timeout(1.0, value="b")
        done = []

        def proc():
            vals = yield sim.all_of([t1, t2])
            done.append((sim.now, vals))

        sim.process(proc())
        sim.run()
        assert done == [(2.0, ["a", "b"])]

    def test_failure_propagates(self, sim):
        bad = sim.event()
        good = sim.timeout(1.0)

        def proc():
            with pytest.raises(RuntimeError):
                yield sim.all_of([good, bad])

        sim.process(proc())
        bad.fail(RuntimeError("child failed"))
        sim.run()


class TestProcess:
    def test_returns_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return 99

        p = sim.process(proc())
        assert sim.run_all([p]) == [99]

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError, match="generator"):
            sim.process(lambda: None)

    def test_yielding_non_event_fails(self, sim):
        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(SimulationError, match="yielded int"):
            sim.run()

    def test_crash_surfaces(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        sim.process(proc())
        with pytest.raises(KeyError):
            sim.run()

    def test_crash_marks_process_failed(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        p = sim.process(proc(), name="crasher")
        with pytest.raises(KeyError):
            sim.run()
        with pytest.raises(SimulationError, match="'crasher' failed"):
            sim.run_all([p])

    def test_two_processes_interleave(self, sim):
        trace = []

        def proc(name, delays):
            for d in delays:
                yield sim.timeout(d)
                trace.append((sim.now, name))

        sim.process(proc("a", [1.0, 3.0]))
        sim.process(proc("b", [2.0, 0.5]))
        sim.run()
        assert trace == [(1.0, "a"), (2.0, "b"), (2.5, "b"), (4.0, "a")]

    def test_process_completion_is_event(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "child-done"

        def parent():
            result = yield sim.process(child())
            return f"saw {result}"

        p = sim.process(parent())
        sim.run()
        assert p.value == "saw child-done"

    def test_yielding_already_processed_event_resumes_inline(self, sim):
        done = sim.timeout(1.0, value="past")
        sim.run()
        assert done.processed

        def proc():
            v = yield done
            return v

        p = sim.process(proc())
        sim.run()
        assert p.value == "past"


class TestDeadlock:
    def test_blocked_process_raises_deadlock(self, sim):
        ev = sim.event()  # never triggered

        def proc():
            yield ev

        sim.process(proc(), name="stuck-rank")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert exc.value.blocked == ["stuck-rank"]

    def test_deadlock_lists_all_blocked(self, sim):
        ev = sim.event()

        def proc():
            yield ev

        for i in range(3):
            sim.process(proc(), name=f"r{i}")
        with pytest.raises(DeadlockError) as exc:
            sim.run()
        assert exc.value.blocked == ["r0", "r1", "r2"]

    def test_completed_processes_do_not_deadlock(self, sim):
        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        assert sim.run() == 1.0


class TestRun:
    def test_run_until_stops_clock(self, sim):
        sim.timeout(10.0)
        assert sim.run(until=4.0) == 4.0
        assert sim.run() == 10.0

    def test_event_count_tracked(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        sim.run()
        assert sim.events_processed == 5

    def test_step_on_empty_queue_raises(self, sim):
        with pytest.raises(IndexError):
            sim.step()

    def test_determinism_same_structure(self, eng):
        def build():
            s = eng.Simulator()
            log = []

            def proc(n):
                for i in range(5):
                    yield s.timeout(0.1 * (n + 1))
                    log.append((round(s.now, 10), n))

            for n in range(4):
                s.process(proc(n))
            s.run()
            return log

        assert build() == build()


class TestAnyOf:
    def test_first_completion_wins(self, eng, sim):
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        seen = []

        def proc():
            result = yield eng.AnyOf(sim, [slow, fast])
            seen.append((sim.now, result))

        sim.process(proc())
        sim.run()
        assert seen == [(1.0, (1, "fast"))]

    def test_empty_rejected(self, eng, sim):
        with pytest.raises(SimulationError):
            eng.AnyOf(sim, [])

    def test_failure_of_first_child_propagates(self, sim):
        bad = sim.event()
        slow = sim.timeout(10.0)

        def proc():
            with pytest.raises(RuntimeError):
                yield sim.any_of([bad, slow])

        sim.process(proc())
        bad.fail(RuntimeError("boom"))
        sim.run()

    def test_later_completions_harmless(self, sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")

        def proc():
            idx, val = yield sim.any_of([a, b])
            assert (idx, val) == (0, "a")
            # b fires later without error.
            yield b
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"


@requires_cengine
class TestBackendParity:
    """Bit-identical behaviour of the two engine implementations."""

    @staticmethod
    def _schedule_log(simulator_cls):
        """A mixed workload touching every event kind; full float log."""
        sim = simulator_cls()
        log = []

        def worker(n):
            for i in range(20):
                yield sim.timeout(0.013 * (n + 1) * (i + 1), value=(n, i))
                log.append(("t", sim.now, n, i))
            return n

        def messenger(n, peer_ev):
            v = yield peer_ev
            log.append(("m", sim.now, n, v))
            yield sim.timeout(0.5)
            return "ok"

        def gatherer(events):
            vals = yield sim.all_of(events)
            log.append(("all", sim.now, tuple(vals)))
            first = yield sim.any_of(list(events))
            log.append(("any", sim.now, first))

        workers = [sim.process(worker(n), name=f"w{n}") for n in range(4)]
        evs = []
        for n in range(3):
            ev = sim.event()
            ev.trigger_at(f"payload{n}", 0.31 * (n + 1))
            evs.append(ev)
            sim.process(messenger(n, ev), name=f"m{n}")
        sim.process(gatherer(evs), name="g")
        results = sim.run_all(workers)
        log.append(("done", sim.now, sim.events_processed, tuple(results)))
        return log

    def test_identical_event_schedules(self):
        from repro.simmachine import _cengine, engine

        pure_log = self._schedule_log(engine.Simulator)
        compiled_log = self._schedule_log(_cengine.Simulator)
        # Exact equality, floats included: same arithmetic, same order.
        assert pure_log == compiled_log

    def test_identical_error_messages(self):
        from repro.simmachine import _cengine, engine

        def messages(mod):
            sim = mod.Simulator()
            out = []
            for trigger in (
                lambda: mod.Timeout(sim, -0.25),
                lambda: sim.event().succeed().succeed(),
                lambda: sim.event().trigger_at(None, -2),
                lambda: sim.event().value,
                lambda: mod.AnyOf(sim, []),
                lambda: sim.process(object()),
            ):
                with pytest.raises(SimulationError) as exc:
                    trigger()
                out.append(str(exc.value))
            return out

        assert messages(engine) == messages(_cengine)

    def test_identical_deadlock_reports(self):
        from repro.simmachine import _cengine, engine

        def deadlock(mod):
            sim = mod.Simulator()

            def stuck():
                yield sim.event()

            for i in range(3):
                sim.process(stuck(), name=f"rank{2 - i}")
            with pytest.raises(DeadlockError) as exc:
                sim.run()
            return exc.value.blocked, str(exc.value)

        assert deadlock(engine) == deadlock(_cengine)
