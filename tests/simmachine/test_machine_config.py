"""Machine configuration objects and presets."""

import pytest

from repro.errors import ConfigurationError
from repro.simmachine.machine import (
    CacheLevelConfig,
    NetworkConfig,
    ProcessorConfig,
    ibm_sp_argonne,
    linear_test_machine,
)


class TestProcessorConfig:
    def test_flop_time(self):
        proc = ibm_sp_argonne().processor
        assert proc.flop_time == pytest.approx(
            1.0 / (120e6 * 4.0 * proc.efficiency)
        )

    def test_peak_flops(self):
        assert ibm_sp_argonne().processor.peak_flops == pytest.approx(480e6)

    def test_efficiency_over_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(
                clock_hz=1e9,
                flops_per_cycle=1,
                efficiency=1.5,
                cache_levels=(CacheLevelConfig("L1", 1024, 1e-9),),
                memory_byte_time=1e-8,
            )

    def test_needs_cache_levels(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(
                clock_hz=1e9,
                flops_per_cycle=1,
                efficiency=0.5,
                cache_levels=(),
                memory_byte_time=1e-8,
            )

    def test_cache_level_validation(self):
        with pytest.raises(ConfigurationError):
            CacheLevelConfig("L1", 0, 1e-9)
        with pytest.raises(ConfigurationError):
            CacheLevelConfig("L1", 1024, 0.0)


class TestNetworkConfig:
    def test_positive_latency_required(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(
                latency=0.0,
                byte_time=1e-9,
                injection_byte_time=1e-10,
                per_message_overhead=0.0,
            )

    def test_contention_defaults_off(self):
        cfg = NetworkConfig(
            latency=1e-6,
            byte_time=1e-9,
            injection_byte_time=1e-10,
            per_message_overhead=0.0,
        )
        assert cfg.contention_coeff == 0.0
        assert cfg.drain_window == 0.0


class TestMachineConfig:
    def test_with_overrides(self):
        cfg = ibm_sp_argonne().with_(noise_cv=0.0, max_procs=16)
        assert cfg.noise_cv == 0.0
        assert cfg.max_procs == 16
        # Original untouched (frozen dataclass semantics).
        assert ibm_sp_argonne().noise_cv > 0

    def test_noise_cv_bounded(self):
        with pytest.raises(ConfigurationError):
            ibm_sp_argonne().with_(noise_cv=1.5)

    def test_noise_floor_non_negative(self):
        with pytest.raises(ConfigurationError):
            ibm_sp_argonne().with_(noise_floor=-1e-6)


class TestPresets:
    def test_ibm_sp_has_two_cache_levels(self):
        cfg = ibm_sp_argonne()
        assert len(cfg.processor.cache_levels) == 2
        l1, l2 = cfg.processor.cache_levels
        assert l1.capacity_bytes < l2.capacity_bytes
        assert l1.byte_time < l2.byte_time < cfg.processor.memory_byte_time

    def test_ibm_sp_eighty_processors(self):
        # The paper: "This machine consists of 80 processors".
        assert ibm_sp_argonne().max_procs == 80

    def test_ibm_sp_p2sc_clock(self):
        assert ibm_sp_argonne().processor.clock_hz == pytest.approx(120e6)

    def test_linear_machine_is_interaction_free(self):
        cfg = linear_test_machine()
        assert cfg.noise_cv == 0.0
        assert cfg.network.contention_coeff == 0.0
        assert cfg.processor.cache_levels[0].capacity_bytes >= 1 << 40
