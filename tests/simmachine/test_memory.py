"""Memory-hierarchy model: residency, LRU eviction, costs, transitions."""

import pytest

from repro.errors import ConfigurationError
from repro.simmachine.memory import DataRegion, MemoryHierarchy

KB = 1024


def two_level(l1=64 * KB, l2=1024 * KB, bt1=1e-9, bt2=4e-9, mem=16e-9, wf=1.0):
    return MemoryHierarchy(
        [("L1", l1, bt1), ("L2", l2, bt2)], memory_byte_time=mem, write_factor=wf
    )


class TestConstruction:
    def test_requires_levels(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy([], memory_byte_time=1e-9)

    def test_capacities_must_increase(self):
        with pytest.raises(ConfigurationError, match="increase outward"):
            MemoryHierarchy(
                [("L1", 1024, 1e-9), ("L2", 512, 4e-9)], memory_byte_time=1e-8
            )

    def test_byte_times_must_increase(self):
        with pytest.raises(ConfigurationError, match="increase outward"):
            MemoryHierarchy(
                [("L1", 512, 4e-9), ("L2", 1024, 1e-9)], memory_byte_time=1e-8
            )

    def test_memory_slower_than_last_level(self):
        with pytest.raises(ConfigurationError, match="memory_byte_time"):
            MemoryHierarchy([("L1", 512, 4e-9)], memory_byte_time=2e-9)

    def test_capacities_property(self):
        mh = two_level()
        assert mh.capacities == (64 * KB, 1024 * KB)


class TestDataRegion:
    def test_needs_name(self):
        with pytest.raises(ConfigurationError):
            DataRegion("", 10)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DataRegion("x", -1)

    def test_zero_size_allowed(self):
        mh = two_level()
        res = mh.touch(DataRegion("empty", 0))
        assert res.time == 0.0
        assert res.hit_fraction == 1.0


class TestTouchCosts:
    def test_cold_touch_costs_memory_time(self):
        mh = two_level()
        region = DataRegion("a", 10 * KB)
        res = mh.touch(region)
        assert res.from_memory == 10 * KB
        assert res.time == pytest.approx(10 * KB * 16e-9)

    def test_second_touch_hits_l1(self):
        mh = two_level()
        region = DataRegion("a", 10 * KB)
        mh.touch(region)
        res = mh.touch(region)
        assert res.from_memory == 0
        assert res.served_by_level == (10 * KB, 0)
        assert res.time == pytest.approx(10 * KB * 1e-9)

    def test_region_bigger_than_l1_spills_to_l2(self):
        mh = two_level()
        region = DataRegion("big", 100 * KB)
        mh.touch(region)
        res = mh.touch(region)
        assert res.served_by_level[0] == 64 * KB
        assert res.served_by_level[1] == 36 * KB
        assert res.from_memory == 0

    def test_region_bigger_than_l2_partially_misses(self):
        mh = two_level()
        region = DataRegion("huge", 2048 * KB)
        mh.touch(region)
        res = mh.touch(region)
        assert res.served_by_level[1] == 1024 * KB - 64 * KB
        assert res.from_memory == 2048 * KB - 1024 * KB

    def test_write_factor_applies_to_memory_bytes_only(self):
        mh = two_level(wf=2.0)
        region = DataRegion("w", 10 * KB)
        cold = mh.touch(region, write=True)
        assert cold.time == pytest.approx(10 * KB * 16e-9 * 2.0)
        warm = mh.touch(region, write=True)
        # No memory traffic -> no write penalty.
        assert warm.time == pytest.approx(10 * KB * 1e-9)

    def test_partial_touch(self):
        mh = two_level()
        region = DataRegion("p", 100 * KB)
        res = mh.touch(region, nbytes=10 * KB)
        assert res.total == 10 * KB
        assert res.from_memory == 10 * KB

    def test_touch_clamps_to_region_size(self):
        mh = two_level()
        region = DataRegion("c", 4 * KB)
        res = mh.touch(region, nbytes=100 * KB)
        assert res.total == 4 * KB

    def test_negative_touch_rejected(self):
        mh = two_level()
        with pytest.raises(ConfigurationError):
            mh.touch(DataRegion("n", KB), nbytes=-5)

    def test_hit_fraction(self):
        mh = two_level()
        region = DataRegion("f", 10 * KB)
        assert mh.touch(region).hit_fraction == 0.0
        assert mh.touch(region).hit_fraction == 1.0


class TestLRU:
    def test_eviction_of_cold_region(self):
        mh = two_level(l1=10 * KB, l2=20 * KB, mem=16e-9)
        a, b, c = (DataRegion(n, 8 * KB) for n in "abc")
        mh.touch(a)
        mh.touch(b)
        mh.touch(c)
        # L2 holds 20KB: c (MRU, 8) + b (8) + a (4 left after partial evict).
        assert mh.resident_bytes(1, "c") == 8 * KB
        assert mh.resident_bytes(1, "b") == 8 * KB
        assert mh.resident_bytes(1, "a") == 4 * KB

    def test_touch_moves_to_mru(self):
        mh = two_level(l1=10 * KB, l2=16 * KB)
        a, b, c = (DataRegion(n, 8 * KB) for n in "abc")
        mh.touch(a)
        mh.touch(b)
        mh.touch(a)  # refresh a; b becomes LRU
        mh.touch(c)
        assert mh.resident_bytes(1, "a") == 8 * KB
        assert mh.resident_bytes(1, "b") == 0
        assert mh.resident_bytes(1, "c") == 8 * KB

    def test_producer_consumer_reuse(self):
        """The constructive-coupling mechanism: reader after writer hits."""
        mh = two_level()
        shared = DataRegion("shared", 32 * KB)
        private = DataRegion("private", 16 * KB)
        mh.touch(shared, write=True)   # kernel i produces
        res = mh.touch(shared)          # kernel j consumes immediately
        assert res.from_memory == 0
        mh.flush()
        mh.touch(shared, write=True)
        mh.touch(private)
        res2 = mh.touch(shared)
        assert res2.from_memory == 0  # still fits beside private

    def test_flush_clears_everything(self):
        mh = two_level()
        region = DataRegion("r", 10 * KB)
        mh.touch(region)
        mh.flush()
        assert mh.resident_bytes(0, "r") == 0
        assert mh.touch(region).from_memory == 10 * KB

    def test_disturb_evicts_lru(self):
        mh = two_level(l1=10 * KB, l2=100 * KB)
        region = DataRegion("victim", 10 * KB)
        mh.touch(region)
        mh.disturb(95 * KB)
        assert mh.resident_bytes(1, "victim") <= 5 * KB
        assert mh.resident_bytes(0, "victim") == 0

    def test_disturb_zero_is_noop(self):
        mh = two_level()
        region = DataRegion("r", KB)
        mh.touch(region)
        mh.disturb(0)
        assert mh.resident_bytes(0, "r") == KB

    def test_disturb_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            two_level().disturb(-1)


class TestCapacityTransitions:
    """Working set crossing a capacity changes the warm-touch cost regime."""

    def test_three_regimes(self):
        mh = two_level(l1=16 * KB, l2=64 * KB)
        costs = {}
        for label, size in (("fits_l1", 8 * KB), ("fits_l2", 48 * KB), ("spills", 256 * KB)):
            mh.flush()
            region = DataRegion(label, size)
            mh.touch(region)
            costs[label] = mh.touch(region).time / size
        assert costs["fits_l1"] < costs["fits_l2"] < costs["spills"]

    def test_per_byte_cost_bounds(self):
        mh = two_level()
        region = DataRegion("r", 8 * KB)
        mh.touch(region)
        warm = mh.touch(region)
        assert warm.time / region.nbytes == pytest.approx(1e-9)
