"""Property-based tests (hypothesis) on the cache model's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmachine.memory import DataRegion, MemoryHierarchy

KB = 1024


def build(l1_kb, l2_kb):
    return MemoryHierarchy(
        [("L1", l1_kb * KB, 1e-9), ("L2", l2_kb * KB, 4e-9)],
        memory_byte_time=16e-9,
    )


region_sizes = st.integers(0, 512 * KB)


@st.composite
def touch_sequences(draw):
    """A hierarchy plus a random sequence of region touches."""
    l1 = draw(st.integers(4, 64))
    l2 = draw(st.integers(65, 512))
    names = draw(
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=12)
    )
    sizes = {n: draw(region_sizes) for n in set(names)}
    return build(l1, l2), [(n, sizes[n]) for n in names]


@settings(max_examples=80, deadline=None)
@given(touch_sequences())
def test_occupancy_never_exceeds_capacity(bundle):
    hierarchy, touches = bundle
    for name, size in touches:
        hierarchy.touch(DataRegion(name, size))
        for level in hierarchy.levels:
            assert level.occupied <= level.capacity
            assert level.occupied == sum(level.resident.values())
            assert all(b >= 0 for b in level.resident.values())


@settings(max_examples=80, deadline=None)
@given(touch_sequences())
def test_served_bytes_partition_the_touch(bundle):
    hierarchy, touches = bundle
    for name, size in touches:
        result = hierarchy.touch(DataRegion(name, size))
        assert sum(result.served_by_level) + result.from_memory == result.total
        assert result.total == min(size, size)
        assert result.time >= 0.0


@settings(max_examples=60, deadline=None)
@given(touch_sequences())
def test_immediate_retouch_never_slower(bundle):
    """Touching a region right after touching it can only get cheaper."""
    hierarchy, touches = bundle
    for name, size in touches:
        first = hierarchy.touch(DataRegion(name, size))
        second = hierarchy.touch(DataRegion(name, size))
        assert second.time <= first.time + 1e-15
        assert second.from_memory <= first.from_memory


@settings(max_examples=60, deadline=None)
@given(touch_sequences())
def test_flush_restores_cold_cost(bundle):
    hierarchy, touches = bundle
    for name, size in touches:
        cold = hierarchy.touch(DataRegion(name, size))
        hierarchy.flush()
        again = hierarchy.touch(DataRegion(name, size))
        assert again.time == cold.time or size == 0
        hierarchy.flush()


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 512 * KB), st.integers(1, 512 * KB))
def test_touch_cost_monotone_in_size(size_a, size_b):
    small, large = sorted((size_a, size_b))
    h1 = build(16, 128)
    h2 = build(16, 128)
    t_small = h1.touch(DataRegion("r", small)).time
    t_large = h2.touch(DataRegion("r", large)).time
    assert t_small <= t_large + 1e-15
