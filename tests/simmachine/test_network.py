"""Interconnect model: injection serialization, contention, bursts."""

import pytest

from repro.errors import CommunicationError
from repro.simmachine.machine import NetworkConfig
from repro.simmachine.network import NetworkModel


def config(**overrides):
    base = dict(
        latency=10e-6,
        byte_time=1e-8,
        injection_byte_time=1e-9,
        per_message_overhead=1e-6,
        contention_coeff=0.0,
        drain_window=0.0,
    )
    base.update(overrides)
    return NetworkConfig(**base)


class TestBasicTiming:
    def test_message_cost_components(self):
        net = NetworkModel(config(), nprocs=4)
        t = net.send_timing(0, 1, nbytes=1000, now=0.0)
        assert t.start == 0.0
        assert t.sender_done == pytest.approx(1e-6 + 1000 * 1e-9)
        assert t.arrival == pytest.approx(t.sender_done + 10e-6 + 1000 * 1e-8)

    def test_zero_byte_message_pays_latency(self):
        net = NetworkModel(config(), nprocs=2)
        t = net.send_timing(0, 1, 0, now=0.0)
        assert t.arrival == pytest.approx(1e-6 + 10e-6)

    def test_self_message_skips_wire(self):
        net = NetworkModel(config(), nprocs=2)
        t = net.send_timing(1, 1, 500, now=0.0)
        assert t.arrival == t.sender_done

    def test_nic_serializes_same_sender(self):
        net = NetworkModel(config(), nprocs=4)
        t1 = net.send_timing(0, 1, 1000, now=0.0)
        t2 = net.send_timing(0, 2, 1000, now=0.0)
        assert t2.start == pytest.approx(t1.sender_done)

    def test_different_senders_do_not_serialize(self):
        net = NetworkModel(config(), nprocs=4)
        net.send_timing(0, 1, 1000, now=0.0)
        t = net.send_timing(1, 2, 1000, now=0.0)
        assert t.start == 0.0

    def test_nic_frees_over_time(self):
        net = NetworkModel(config(), nprocs=2)
        net.send_timing(0, 1, 1000, now=0.0)
        t = net.send_timing(0, 1, 1000, now=1.0)
        assert t.start == 1.0

    def test_statistics(self):
        net = NetworkModel(config(), nprocs=2)
        net.send_timing(0, 1, 100, 0.0)
        net.send_timing(0, 1, 200, 0.0)
        assert net.messages_sent == 2
        assert net.bytes_sent == 300


class TestValidation:
    def test_rank_out_of_range(self):
        net = NetworkModel(config(), nprocs=2)
        with pytest.raises(CommunicationError):
            net.send_timing(0, 5, 10, 0.0)

    def test_negative_bytes(self):
        net = NetworkModel(config(), nprocs=2)
        with pytest.raises(CommunicationError):
            net.send_timing(0, 1, -1, 0.0)

    def test_zero_procs(self):
        with pytest.raises(CommunicationError):
            NetworkModel(config(), nprocs=0)

    def test_burst_count_must_be_positive(self):
        net = NetworkModel(config(), nprocs=2)
        with pytest.raises(CommunicationError):
            net.send_timing(0, 1, 10, 0.0, messages=0)


class TestContention:
    def test_no_contention_without_window(self):
        net = NetworkModel(config(contention_coeff=0.5), nprocs=4)
        for _ in range(10):
            t = net.send_timing(0, 1, 10, 0.0)
        assert t.contention == 1.0

    def test_backlog_raises_latency(self):
        net = NetworkModel(
            config(contention_coeff=0.1, drain_window=1.0), nprocs=4
        )
        first = net.send_timing(0, 1, 10, 0.0)
        assert first.contention == 1.0
        later = net.send_timing(1, 2, 10, 0.0)
        assert later.contention == pytest.approx(1.1)

    def test_backlog_expires_outside_window(self):
        net = NetworkModel(
            config(contention_coeff=0.1, drain_window=1e-3), nprocs=4
        )
        net.send_timing(0, 1, 10, 0.0)
        t = net.send_timing(1, 2, 10, 1.0)
        assert t.contention == 1.0

    def test_drain_clears_backlog(self):
        net = NetworkModel(
            config(contention_coeff=0.1, drain_window=10.0), nprocs=4
        )
        for _ in range(5):
            net.send_timing(0, 1, 10, 0.0)
        net.drain()
        t = net.send_timing(1, 2, 10, 0.0)
        assert t.contention == 1.0

    def test_max_inflight_tracked(self):
        net = NetworkModel(
            config(contention_coeff=0.1, drain_window=10.0), nprocs=4
        )
        for _ in range(7):
            net.send_timing(0, 1, 10, 0.0)
        assert net.max_inflight == 7


class TestBursts:
    def test_burst_pays_overhead_per_message(self):
        net = NetworkModel(config(), nprocs=2)
        t = net.send_timing(0, 1, 1000, 0.0, messages=10)
        assert t.sender_done == pytest.approx(10 * 1e-6 + 1000 * 1e-9)

    def test_burst_counts_toward_contention(self):
        net = NetworkModel(
            config(contention_coeff=0.01, drain_window=1.0), nprocs=4
        )
        net.send_timing(0, 1, 1000, 0.0, messages=50)
        t = net.send_timing(1, 2, 10, 0.0)
        assert t.contention == pytest.approx(1.5)

    def test_burst_counts_in_statistics(self):
        net = NetworkModel(config(), nprocs=2)
        net.send_timing(0, 1, 1000, 0.0, messages=25)
        assert net.messages_sent == 25
