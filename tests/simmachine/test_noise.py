"""Noise model: determinism, calibration, independence."""

import statistics

import pytest

from repro.errors import ConfigurationError
from repro.simmachine.noise import NoiseModel


class TestDeterminism:
    def test_same_stream_reproduces(self):
        a = NoiseModel(7, 0.05).rank_stream("run", 3)
        b = NoiseModel(7, 0.05).rank_stream("run", 3)
        assert [a.factor() for _ in range(20)] == [b.factor() for _ in range(20)]

    def test_ranks_are_independent(self):
        model = NoiseModel(7, 0.05)
        s0 = model.rank_stream("run", 0)
        s1 = model.rank_stream("run", 1)
        assert [s0.factor() for _ in range(5)] != [s1.factor() for _ in range(5)]

    def test_run_ids_are_independent(self):
        model = NoiseModel(7, 0.05)
        a = model.rank_stream("alpha", 0)
        b = model.rank_stream("beta", 0)
        assert [a.factor() for _ in range(5)] != [b.factor() for _ in range(5)]

    def test_seed_changes_stream(self):
        a = NoiseModel(1, 0.05).rank_stream("run", 0)
        b = NoiseModel(2, 0.05).rank_stream("run", 0)
        assert [a.factor() for _ in range(5)] != [b.factor() for _ in range(5)]


class TestCalibration:
    def test_zero_cv_is_exactly_one(self):
        stream = NoiseModel(0, 0.0).rank_stream("run", 0)
        assert all(stream.factor() == 1.0 for _ in range(10))

    def test_mean_is_one(self):
        stream = NoiseModel(123, 0.1).rank_stream("run", 0)
        samples = [stream.factor() for _ in range(20000)]
        assert statistics.fmean(samples) == pytest.approx(1.0, abs=0.01)

    def test_cv_matches_configuration(self):
        cv = 0.2
        stream = NoiseModel(9, cv).rank_stream("run", 0)
        samples = [stream.factor() for _ in range(20000)]
        mean = statistics.fmean(samples)
        sd = statistics.stdev(samples)
        assert sd / mean == pytest.approx(cv, rel=0.1)

    def test_factors_positive(self):
        stream = NoiseModel(5, 0.3).rank_stream("run", 0)
        assert all(stream.factor() > 0 for _ in range(1000))

    def test_negative_cv_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(0, -0.1)


class TestFloor:
    def test_zero_scale_is_zero(self):
        stream = NoiseModel(0, 0.1).rank_stream("run", 0)
        assert stream.floor_jitter(0.0) == 0.0

    def test_floor_bounded(self):
        stream = NoiseModel(0, 0.1).rank_stream("run", 0)
        for _ in range(1000):
            v = stream.floor_jitter(1e-4)
            assert 0.0 <= v < 1e-4

    def test_floor_without_cv_is_midpoint(self):
        stream = NoiseModel(0, 0.0).rank_stream("run", 0)
        assert stream.floor_jitter(2.0) == 1.0
