"""Machine + RankContext: programs, counters, labels, state management."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simmachine import Machine, DataRegion, ibm_sp_argonne


@pytest.fixture
def quiet():
    return ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)


class TestMachineConstruction:
    def test_rejects_zero_procs(self, quiet):
        with pytest.raises(ConfigurationError):
            Machine(quiet, 0)

    def test_rejects_over_capacity(self, quiet):
        with pytest.raises(ConfigurationError, match="80 procs"):
            Machine(quiet, 81)

    def test_per_rank_memories_are_independent(self, quiet):
        m = Machine(quiet, 2)
        region = DataRegion("r", 1024)
        m.memories[0].touch(region)
        assert m.memories[0].resident_bytes(0, "r") == 1024
        assert m.memories[1].resident_bytes(0, "r") == 0


class TestWork:
    def test_compute_time_matches_flop_rate(self, quiet):
        m = Machine(quiet, 1)

        def program(ctx):
            yield ctx.work(flops=1e6)

        elapsed = m.run(program)
        assert elapsed == pytest.approx(1e6 * quiet.processor.flop_time)

    def test_memory_time_added(self, quiet):
        m = Machine(quiet, 1)
        region = DataRegion("data", 100 * 1024)

        def program(ctx):
            yield ctx.work(flops=0, regions=[(region, None, False)])

        elapsed = m.run(program)
        assert elapsed == pytest.approx(
            100 * 1024 * quiet.processor.memory_byte_time
        )

    def test_negative_flops_rejected(self, quiet):
        m = Machine(quiet, 1)

        def program(ctx):
            yield ctx.work(flops=-1)

        with pytest.raises(SimulationError):
            m.run(program)

    def test_jitter_disabled_flag(self):
        noisy = ibm_sp_argonne().with_(noise_cv=0.2, noise_floor=0.0)
        m1 = Machine(noisy, 1, seed=1)
        m2 = Machine(noisy, 1, seed=2)

        def program(ctx):
            yield ctx.work(flops=1e6, jitter=False)

        assert m1.run(program) == m2.run(program)

    def test_jitter_varies_with_seed(self):
        noisy = ibm_sp_argonne().with_(noise_cv=0.2, noise_floor=0.0)

        def program(ctx):
            yield ctx.work(flops=1e6)

        t1 = Machine(noisy, 1, seed=1).run(program)
        t2 = Machine(noisy, 1, seed=2).run(program)
        assert t1 != t2


class TestCounters:
    def test_label_attribution(self, quiet):
        m = Machine(quiet, 2)
        region = DataRegion("d", 2048)

        def program(ctx):
            ctx.set_label("alpha")
            yield ctx.work(flops=100, regions=[(region, None, False)])
            ctx.set_label("beta")
            yield ctx.work(flops=200)

        m.run(program)
        alpha = m.counters_for("alpha")
        beta = m.counters_for("beta")
        assert alpha.flops == 200  # two ranks x 100
        assert beta.flops == 400
        assert alpha.bytes_from_memory == 2 * 2048
        assert beta.bytes_touched == 0
        assert m.all_labels() == ["alpha", "beta"]

    def test_busy_time(self, quiet):
        m = Machine(quiet, 1)

        def program(ctx):
            ctx.set_label("k")
            yield ctx.work(flops=1e6)

        m.run(program)
        c = m.counters_for("k")
        assert c.busy_time == pytest.approx(c.compute_time + c.memory_time)

    def test_counters_for_unknown_label_is_zero(self, quiet):
        m = Machine(quiet, 1)
        assert m.counters_for("nothing").flops == 0


class TestStateManagement:
    def test_flush_memory_clears_all_ranks(self, quiet):
        m = Machine(quiet, 3)
        region = DataRegion("r", 512)
        for mem in m.memories:
            mem.touch(region)
        m.flush_memory()
        assert all(mem.resident_bytes(0, "r") == 0 for mem in m.memories)

    def test_run_returns_elapsed_since_launch(self, quiet):
        m = Machine(quiet, 2)

        def program(ctx):
            yield ctx.sim.timeout(1.0)

        assert m.run(program) == pytest.approx(1.0)
        assert m.run(program) == pytest.approx(1.0)  # relative to second launch

    def test_trace_records_phases(self, quiet):
        m = Machine(quiet, 1, trace=True)

        def program(ctx):
            ctx.set_label("phase1")
            yield ctx.work(flops=10)

        m.run(program)
        phases = m.trace.by_kind("phase")
        assert [p.label for p in phases] == ["phase1"]
        assert len(m.trace.by_kind("compute")) == 1

    def test_trace_off_by_default(self, quiet):
        assert Machine(quiet, 1).trace is None
