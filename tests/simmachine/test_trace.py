"""Trace recorder."""

import pytest

from repro.simmachine.trace import Trace, TraceRecord


class TestTrace:
    def test_append_and_iterate(self):
        trace = Trace()
        trace.add(0.0, 0, "k", "phase")
        trace.add(1.0, 1, "k", "compute", {"flops": 10})
        assert len(trace) == 2
        assert [r.time for r in trace] == [0.0, 1.0]

    def test_by_rank(self):
        trace = Trace()
        trace.add(0.0, 0, "a", "phase")
        trace.add(0.5, 1, "b", "phase")
        trace.add(1.0, 0, "c", "phase")
        assert [r.label for r in trace.by_rank(0)] == ["a", "c"]

    def test_by_kind(self):
        trace = Trace()
        trace.add(0.0, 0, "a", "phase")
        trace.add(0.5, 0, "a", "compute")
        assert [r.kind for r in trace.by_kind("compute")] == ["compute"]

    def test_records_are_frozen(self):
        rec = TraceRecord(0.0, 0, "x", "phase")
        try:
            rec.time = 5.0
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestRingBuffer:
    def test_unbounded_by_default(self):
        trace = Trace()
        for i in range(100):
            trace.add(float(i), 0, "k", "phase")
        assert len(trace) == 100
        assert trace.dropped == 0

    def test_keeps_newest_and_counts_drops(self):
        trace = Trace(max_records=3)
        for i in range(10):
            trace.add(float(i), 0, "k", "phase")
        assert len(trace) == 3
        assert trace.dropped == 7
        assert [r.time for r in trace] == [7.0, 8.0, 9.0]

    def test_filters_see_only_retained_records(self):
        trace = Trace(max_records=2)
        trace.add(0.0, 0, "a", "phase")
        trace.add(1.0, 1, "b", "compute")
        trace.add(2.0, 0, "c", "phase")
        assert [r.label for r in trace.by_rank(0)] == ["c"]
        assert [r.label for r in trace.by_kind("compute")] == ["b"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Trace(max_records=0)
