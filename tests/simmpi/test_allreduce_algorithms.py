"""Allreduce algorithm variants."""

import operator

import pytest

from repro.errors import CommunicationError
from tests.conftest import make_machine


def run_allreduce(machine, algorithm, op=operator.add):
    results = []

    def program(ctx):
        value = yield from ctx.comm.allreduce(
            ctx.comm.rank + 1, 8, op=op, algorithm=algorithm
        )
        results.append(value)

    elapsed = machine.run(program)
    return results, elapsed


class TestCorrectness:
    @pytest.mark.parametrize("size", [1, 2, 4, 8, 16])
    @pytest.mark.parametrize("algorithm", ["recursive_doubling", "tree", "auto"])
    def test_sum_all_ranks(self, quiet_config, size, algorithm):
        machine = make_machine(quiet_config, size)
        results, _ = run_allreduce(machine, algorithm)
        expected = sum(range(1, size + 1))
        assert results == [expected] * size

    @pytest.mark.parametrize("size", [3, 5, 6])
    def test_auto_handles_non_pow2(self, quiet_config, size):
        machine = make_machine(quiet_config, size)
        results, _ = run_allreduce(machine, "auto")
        assert results == [sum(range(1, size + 1))] * size

    def test_recursive_doubling_rejects_non_pow2(self, quiet_config):
        machine = make_machine(quiet_config, 6)
        with pytest.raises(CommunicationError, match="power-of-two"):
            run_allreduce(machine, "recursive_doubling")

    def test_unknown_algorithm_rejected(self, quiet_config):
        machine = make_machine(quiet_config, 4)
        with pytest.raises(CommunicationError, match="unknown allreduce"):
            run_allreduce(machine, "magic")

    def test_max_op(self, quiet_config):
        machine = make_machine(quiet_config, 8)
        results, _ = run_allreduce(machine, "recursive_doubling", op=max)
        assert results == [8] * 8


class TestCost:
    def test_recursive_doubling_fewer_rounds(self, quiet_config):
        """log2(P) rounds must beat the tree's reduce+bcast (2 log2 P)."""
        t_rd = run_allreduce(make_machine(quiet_config, 16), "recursive_doubling")[1]
        t_tree = run_allreduce(make_machine(quiet_config, 16), "tree")[1]
        assert t_rd < t_tree

    def test_auto_picks_recursive_doubling_for_pow2(self, quiet_config):
        t_auto = run_allreduce(make_machine(quiet_config, 16), "auto")[1]
        t_rd = run_allreduce(make_machine(quiet_config, 16), "recursive_doubling")[1]
        assert t_auto == pytest.approx(t_rd)


class TestFaultInjection:
    def test_dropped_collective_message_deadlocks(self, quiet_config):
        from repro.errors import DeadlockError

        machine = make_machine(quiet_config, 4)
        world = machine.contexts[0].comm.world
        world.fault_injector = lambda src, dst, tag: src == 2
        with pytest.raises(DeadlockError):
            run_allreduce(machine, "tree")
        assert world.dropped_messages >= 1

    def test_sender_unaffected_by_drop(self, quiet_config):
        machine = make_machine(quiet_config, 2)
        world = machine.contexts[0].comm.world
        world.fault_injector = lambda src, dst, tag: tag == 7
        done = []

        def program(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.send(1, 10, tag=7)
                done.append("sent")
            else:
                yield ctx.sim.timeout(0.0)

        machine.run(program)
        assert done == ["sent"]
        assert world.dropped_messages == 1
        assert world.unmatched_messages() == 0
