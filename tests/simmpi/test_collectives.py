"""Collectives: correctness of the tree/ring algorithms at several sizes."""

import operator

import pytest

from repro.errors import CommunicationError
from tests.conftest import make_machine

SIZES = [1, 2, 3, 4, 5, 8]


@pytest.fixture(params=SIZES)
def machine(request, quiet_config):
    return make_machine(quiet_config, request.param)


class TestBarrier:
    def test_synchronizes_all_ranks(self, machine):
        after = []

        def program(ctx):
            yield ctx.sim.timeout(0.001 * ctx.rank)  # staggered arrivals
            yield from ctx.comm.barrier()
            after.append(ctx.sim.now)

        machine.run(program)
        slowest_arrival = 0.001 * (machine.nprocs - 1)
        assert all(t >= slowest_arrival for t in after)

    def test_multiple_barriers_in_sequence(self, machine):
        def program(ctx):
            for _ in range(3):
                yield from ctx.comm.barrier()

        machine.run(program)  # must not deadlock or mismatch tags


class TestBcast:
    @pytest.mark.parametrize("root", [0, 1])
    def test_everyone_gets_payload(self, machine, root):
        if root >= machine.nprocs:
            pytest.skip("root outside communicator")
        got = []

        def program(ctx):
            payload = "secret" if ctx.comm.rank == root else None
            value = yield from ctx.comm.bcast(64, root=root, payload=payload)
            got.append(value)

        machine.run(program)
        assert got == ["secret"] * machine.nprocs

    def test_bad_root_rejected(self, machine):
        def program(ctx):
            yield from ctx.comm.bcast(8, root=machine.nprocs + 3)

        with pytest.raises(CommunicationError):
            machine.run(program)


class TestReduce:
    def test_sum_at_root(self, machine):
        results = {}

        def program(ctx):
            value = yield from ctx.comm.reduce(ctx.comm.rank + 1, 8, root=0)
            results[ctx.comm.rank] = value

        machine.run(program)
        expected = sum(range(1, machine.nprocs + 1))
        assert results[0] == expected
        assert all(v is None for r, v in results.items() if r != 0)

    def test_custom_op(self, machine):
        results = {}

        def program(ctx):
            value = yield from ctx.comm.reduce(
                ctx.comm.rank + 1, 8, root=0, op=operator.mul
            )
            results[ctx.comm.rank] = value

        machine.run(program)
        expected = 1
        for i in range(1, machine.nprocs + 1):
            expected *= i
        assert results[0] == expected


class TestAllreduce:
    def test_everyone_gets_sum(self, machine):
        got = []

        def program(ctx):
            value = yield from ctx.comm.allreduce(ctx.comm.rank, 8)
            got.append(value)

        machine.run(program)
        assert got == [sum(range(machine.nprocs))] * machine.nprocs


class TestAllgather:
    def test_blocks_in_rank_order(self, machine):
        got = {}

        def program(ctx):
            blocks = yield from ctx.comm.allgather(ctx.comm.rank * 2, 8)
            got[ctx.comm.rank] = blocks

        machine.run(program)
        expected = [r * 2 for r in range(machine.nprocs)]
        assert all(blocks == expected for blocks in got.values())


class TestAlltoall:
    def test_transpose_semantics(self, machine):
        got = {}

        def program(ctx):
            values = [
                ctx.comm.rank * 100 + dst for dst in range(ctx.comm.size)
            ]
            result = yield from ctx.comm.alltoall(values, 8)
            got[ctx.comm.rank] = result

        machine.run(program)
        for rank, result in got.items():
            assert result == [
                src * 100 + rank for src in range(machine.nprocs)
            ]

    def test_wrong_value_count_rejected(self, machine):
        def program(ctx):
            yield from ctx.comm.alltoall([0], 8)

        if machine.nprocs == 1:
            machine.run(program)  # exactly one value is correct here
        else:
            with pytest.raises(CommunicationError):
                machine.run(program)


class TestGatherScatter:
    def test_gather_collects_by_rank(self, machine):
        results = {}

        def program(ctx):
            out = yield from ctx.comm.gather(ctx.comm.rank ** 2, 8, root=0)
            results[ctx.comm.rank] = out

        machine.run(program)
        assert results[0] == [r * r for r in range(machine.nprocs)]
        assert all(v is None for r, v in results.items() if r != 0)

    def test_scatter_distributes_blocks(self, machine):
        got = {}

        def program(ctx):
            values = (
                [f"b{r}" for r in range(ctx.comm.size)]
                if ctx.comm.rank == 0
                else None
            )
            got[ctx.comm.rank] = yield from ctx.comm.scatter(values, 8, root=0)

        machine.run(program)
        assert got == {r: f"b{r}" for r in range(machine.nprocs)}

    def test_scatter_requires_values_at_root(self, machine):
        def program(ctx):
            yield from ctx.comm.scatter(None, 8, root=0)

        if machine.nprocs == 1:
            with pytest.raises(CommunicationError):
                machine.run(program)
        else:
            with pytest.raises(CommunicationError):
                machine.run(program)


class TestMixedSequences:
    def test_back_to_back_different_collectives(self, machine):
        """Tag sequencing across collective kinds must never cross-match."""
        def program(ctx):
            comm = ctx.comm
            total = yield from comm.allreduce(1, 8)
            assert total == comm.size
            yield from comm.barrier()
            blocks = yield from comm.allgather(comm.rank, 8)
            assert blocks == list(range(comm.size))
            value = yield from comm.bcast(8, root=0, payload="z" if comm.rank == 0 else None)
            assert value == "z"
            vals = yield from comm.alltoall([comm.rank] * comm.size, 8)
            assert vals == list(range(comm.size))
            total2 = yield from comm.allreduce(2, 8)
            assert total2 == 2 * comm.size

        machine.run(program)

    def test_collective_cost_grows_with_size(self, quiet_config):
        def program(ctx):
            yield from ctx.comm.barrier()

        t2 = make_machine(quiet_config, 2).run(program)
        t8 = make_machine(quiet_config, 8).run(program)
        assert t8 > t2
