"""Datatype sizes."""

import pytest

from repro.errors import ConfigurationError
from repro.simmpi.datatypes import BYTE, DOUBLE, INT, WORD, Datatype, bytes_of


class TestDatatypes:
    def test_standard_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_word_is_8_bytes(self):
        # The paper: LU exchanges "five words each" — 40-byte messages.
        assert bytes_of(5, WORD) == 40

    def test_default_datatype_is_double(self):
        assert bytes_of(10) == 80

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            bytes_of(-1)

    def test_zero_count(self):
        assert bytes_of(0) == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Datatype("bad", 0)
