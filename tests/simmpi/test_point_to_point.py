"""Point-to-point messaging: matching, ordering, blocking semantics."""

import pytest

from repro.errors import CommunicationError, DeadlockError
from repro.simmpi.comm import COLL_TAG_BASE
from tests.conftest import make_machine


def run(machine, program):
    return machine.run(program)


class TestSendRecv:
    def test_payload_delivered(self, machine4):
        received = {}

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                yield from comm.send(1, 100, tag=5, payload={"x": 1})
            elif comm.rank == 1:
                received["msg"] = yield from comm.recv(0, tag=5)

        run(machine4, program)
        assert received["msg"] == {"x": 1}

    def test_recv_before_send(self, machine4):
        """Posting the receive first must not deadlock."""
        got = []

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 1:
                got.append((yield from comm.recv(0, tag=1)))
            elif comm.rank == 0:
                yield ctx.sim.timeout(1e-3)  # make rank 1 wait
                yield from comm.send(1, 10, tag=1, payload="late")

        run(machine4, program)
        assert got == ["late"]

    def test_fifo_per_channel(self, machine4):
        order = []

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(1, 10, tag=2, payload=i)
            elif comm.rank == 1:
                for _ in range(5):
                    order.append((yield from comm.recv(0, tag=2)))

        run(machine4, program)
        assert order == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self, machine4):
        got = {}

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                yield from comm.send(1, 10, tag=7, payload="seven")
                yield from comm.send(1, 10, tag=8, payload="eight")
            elif comm.rank == 1:
                # Receive in the opposite order of sending.
                got["eight"] = yield from comm.recv(0, tag=8)
                got["seven"] = yield from comm.recv(0, tag=7)

        run(machine4, program)
        assert got == {"eight": "eight", "seven": "seven"}

    def test_sources_demultiplex(self, machine4):
        got = {}

        def program(ctx):
            comm = ctx.comm
            if comm.rank in (0, 2):
                yield from comm.send(1, 10, tag=1, payload=f"from{comm.rank}")
            elif comm.rank == 1:
                got[2] = yield from comm.recv(2, tag=1)
                got[0] = yield from comm.recv(0, tag=1)

        run(machine4, program)
        assert got == {0: "from0", 2: "from2"}

    def test_self_send(self, machine4):
        got = []

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                yield from comm.send(0, 10, tag=3, payload="me")
                got.append((yield from comm.recv(0, tag=3)))

        run(machine4, program)
        assert got == ["me"]

    def test_recv_arrival_time_respects_latency(self, machine4):
        times = {}

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                yield from comm.send(1, 1000, tag=1)
            elif comm.rank == 1:
                yield from comm.recv(0, tag=1)
                times["recv_done"] = ctx.sim.now

        run(machine4, program)
        net = machine4.config.network
        assert times["recv_done"] >= net.latency


class TestNonBlocking:
    def test_isend_returns_immediately(self, machine4):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                req = comm.isend(1, 10, tag=1, payload="x")
                assert not req.complete
                yield from comm.wait(req)
                assert req.complete
            elif comm.rank == 1:
                yield from comm.recv(0, tag=1)

        run(machine4, program)

    def test_waitall_gathers_payloads(self, machine4):
        got = []

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                for peer in (1, 2, 3):
                    yield from comm.send(peer, 10, tag=4, payload=peer * 10)
            else:
                req = comm.irecv(0, tag=4)
                values = yield from comm.waitall([req])
                got.append(values[0])

        run(machine4, program)
        assert sorted(got) == [10, 20, 30]

    def test_request_payload_property(self, machine4):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                yield from comm.send(1, 10, tag=1, payload="v")
            elif comm.rank == 1:
                req = comm.irecv(0, tag=1)
                assert req.payload is None or req.payload == "v"
                yield from comm.wait(req)
                assert req.payload == "v"

        run(machine4, program)

    def test_sendrecv_exchanges(self, machine4):
        got = {}

        def program(ctx):
            comm = ctx.comm
            peer = comm.rank ^ 1
            got[comm.rank] = yield from comm.sendrecv(
                peer, 10, send_tag=6, payload=comm.rank
            )

        run(machine4, program)
        assert got == {0: 1, 1: 0, 2: 3, 3: 2}

    def test_wait_accounts_wait_time(self, machine4):
        def program(ctx):
            comm = ctx.comm
            ctx.set_label("k")
            if comm.rank == 1:
                yield from comm.recv(0, tag=1)
            elif comm.rank == 0:
                yield ctx.sim.timeout(1e-2)
                yield from comm.send(1, 10, tag=1)

        run(machine4, program)
        waited = machine4.contexts[1].counters["k"].wait_time
        assert waited >= 1e-2


class TestErrors:
    def test_unmatched_recv_deadlocks(self, machine4):
        def program(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.recv(1, tag=9)
            else:
                yield ctx.sim.timeout(0.0)

        with pytest.raises(DeadlockError) as exc:
            run(machine4, program)
        assert any("0" in name for name in exc.value.blocked)

    def test_bad_peer_rejected(self, machine4):
        def program(ctx):
            yield from ctx.comm.send(99, 10)

        with pytest.raises(CommunicationError):
            run(machine4, program)

    def test_wildcard_source_rejected(self, machine4):
        def program(ctx):
            yield from ctx.comm.recv(-1)

        with pytest.raises(CommunicationError, match="wildcard"):
            run(machine4, program)

    def test_user_tag_in_collective_space_rejected(self, machine4):
        def program(ctx):
            yield from ctx.comm.send(0, 10, tag=COLL_TAG_BASE + 1)

        with pytest.raises(CommunicationError, match="user tags"):
            run(machine4, program)

    def test_negative_tag_rejected(self, machine4):
        def program(ctx):
            yield from ctx.comm.send(0, 10, tag=-1)

        with pytest.raises(CommunicationError):
            run(machine4, program)

    def test_unreceived_message_detectable(self, quiet_config):
        machine = make_machine(quiet_config, 2)
        world = machine.contexts[0].comm.world

        def program(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.send(1, 10, tag=1)
            else:
                yield ctx.sim.timeout(0.0)

        machine.run(program)
        assert world.unmatched_messages() == 1


class TestWaitany:
    def test_returns_first_arrival(self, machine4):
        results = []

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                r1 = comm.irecv(1, tag=1)
                r2 = comm.irecv(2, tag=1)
                idx, val = yield from comm.waitany([r1, r2])
                results.append((idx, val))
                # Drain the other request so nothing leaks.
                yield from comm.waitall([r1 if idx == 1 else r2])
            elif comm.rank == 1:
                yield ctx.sim.timeout(1e-2)
                yield from comm.send(0, 10, tag=1, payload="slow")
            elif comm.rank == 2:
                yield from comm.send(0, 10, tag=1, payload="fast")
            else:
                yield ctx.sim.timeout(0.0)

        run(machine4, program)
        assert results == [(1, "fast")]
