"""Property-based stress tests: random matched communication schedules.

Any schedule in which every send has a matching receive (same src, dst,
tag, in per-channel FIFO order) must complete without deadlock and deliver
every payload to the right place — regardless of interleaving, timing
jitter, or how late receives are posted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmachine import Machine, ibm_sp_argonne
from repro.simmpi import attach_world


@st.composite
def matched_schedules(draw):
    """A list of (src, dst, tag) messages over a small communicator."""
    size = draw(st.integers(2, 5))
    n_msgs = draw(st.integers(1, 12))
    msgs = [
        (
            draw(st.integers(0, size - 1)),
            draw(st.integers(0, size - 1)),
            draw(st.integers(0, 3)),
        )
        for _ in range(n_msgs)
    ]
    # Random extra delays before each rank starts communicating.
    delays = [draw(st.floats(0.0, 1e-3)) for _ in range(size)]
    return size, msgs, delays


@settings(max_examples=60, deadline=None)
@given(matched_schedules())
def test_matched_schedule_never_deadlocks(bundle):
    size, msgs, delays = bundle
    config = ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)
    machine = Machine(config, size, seed=0)
    attach_world(machine)
    received: dict[int, list] = {r: [] for r in range(size)}

    def program(ctx):
        comm = ctx.comm
        yield ctx.sim.timeout(delays[ctx.rank])
        # Post all receives nonblocking first, then all sends, then wait:
        # a valid MPI pattern for any matched schedule.
        recvs = [
            comm.irecv(src, tag)
            for i, (src, dst, tag) in enumerate(msgs)
            if dst == ctx.rank
        ]
        for i, (src, dst, tag) in enumerate(msgs):
            if src == ctx.rank:
                yield from comm.send(dst, 8 * (i + 1), tag, payload=i)
        values = yield from comm.waitall(recvs)
        received[ctx.rank].extend(values)

    machine.run(program)
    # Every message delivered exactly once, to its destination.
    delivered = sorted(v for values in received.values() for v in values)
    assert delivered == list(range(len(msgs)))
    for rank, values in received.items():
        expected = {i for i, (s, d, t) in enumerate(msgs) if d == rank}
        assert set(values) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.integers(2, 6),
    st.lists(
        st.sampled_from(["barrier", "bcast", "allreduce", "allgather"]),
        min_size=1,
        max_size=6,
    ),
)
def test_random_collective_sequences(size, sequence):
    """Arbitrary SPMD collective sequences complete with correct results."""
    config = ibm_sp_argonne().with_(noise_cv=0.0, noise_floor=0.0)
    machine = Machine(config, size, seed=0)
    attach_world(machine)
    checks: list[bool] = []

    def program(ctx):
        comm = ctx.comm
        for op in sequence:
            if op == "barrier":
                yield from comm.barrier()
            elif op == "bcast":
                value = yield from comm.bcast(
                    8, root=0, payload="x" if comm.rank == 0 else None
                )
                checks.append(value == "x")
            elif op == "allreduce":
                total = yield from comm.allreduce(1, 8)
                checks.append(total == comm.size)
            elif op == "allgather":
                blocks = yield from comm.allgather(comm.rank, 8)
                checks.append(blocks == list(range(comm.size)))

    machine.run(program)
    assert all(checks)
