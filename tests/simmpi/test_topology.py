"""Process grids: shapes, coordinate maps, neighbors, partitions."""

import pytest

from repro.errors import ConfigurationError
from repro.simmpi.topology import (
    CartGrid,
    partition_sizes,
    pow2_grid_shape,
    square_grid_shape,
)


class TestSquareGrid:
    @pytest.mark.parametrize(
        "n,expected", [(1, (1, 1)), (4, (2, 2)), (9, (3, 3)), (16, (4, 4)), (25, (5, 5))]
    )
    def test_perfect_squares(self, n, expected):
        assert square_grid_shape(n) == expected

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 12, 24])
    def test_non_squares_rejected(self, n):
        with pytest.raises(ConfigurationError, match="square"):
            square_grid_shape(n)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            square_grid_shape(0)


class TestPow2Grid:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (8, (4, 2)), (16, (4, 4)), (32, (8, 4))],
    )
    def test_alternate_halving(self, n, expected):
        """x is halved first, so it gets the extra factor of two."""
        assert pow2_grid_shape(n) == expected

    @pytest.mark.parametrize("n", [3, 6, 12, 24])
    def test_non_pow2_rejected(self, n):
        with pytest.raises(ConfigurationError, match="power-of-two"):
            pow2_grid_shape(n)


class TestPartitionSizes:
    def test_even_split(self):
        assert partition_sizes(64, 4) == [16, 16, 16, 16]

    def test_remainder_goes_to_leading_parts(self):
        assert partition_sizes(33, 2) == [17, 16]
        assert partition_sizes(102, 4) == [26, 26, 25, 25]

    def test_total_preserved(self):
        for n in (12, 33, 64, 102):
            for parts in (1, 2, 3, 5):
                assert sum(partition_sizes(n, parts)) == n

    def test_too_many_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_sizes(3, 4)

    def test_zero_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            partition_sizes(10, 0)


class TestCartGrid:
    def test_coords_roundtrip(self):
        grid = CartGrid(3, 4)
        for rank in range(grid.size):
            i, j = grid.coords(rank)
            assert grid.rank_of(i, j) == rank

    def test_row_major_order(self):
        grid = CartGrid(2, 3)
        assert grid.coords(0) == (0, 0)
        assert grid.coords(2) == (0, 2)
        assert grid.coords(3) == (1, 0)

    def test_rank_out_of_range(self):
        with pytest.raises(ConfigurationError):
            CartGrid(2, 2).coords(4)

    def test_coords_out_of_range(self):
        with pytest.raises(ConfigurationError):
            CartGrid(2, 2).rank_of(2, 0)

    def test_interior_neighbors(self):
        grid = CartGrid(3, 3)
        center = grid.rank_of(1, 1)
        assert grid.neighbor(center, 0, -1) == grid.rank_of(0, 1)
        assert grid.neighbor(center, 0, +1) == grid.rank_of(2, 1)
        assert grid.neighbor(center, 1, -1) == grid.rank_of(1, 0)
        assert grid.neighbor(center, 1, +1) == grid.rank_of(1, 2)

    def test_edge_neighbors_none(self):
        grid = CartGrid(3, 3)
        corner = grid.rank_of(0, 0)
        assert grid.neighbor(corner, 0, -1) is None
        assert grid.neighbor(corner, 1, -1) is None

    def test_periodic_wraps(self):
        grid = CartGrid(3, 3)
        corner = grid.rank_of(0, 0)
        assert grid.neighbor(corner, 0, -1, periodic=True) == grid.rank_of(2, 0)
        assert grid.neighbor(corner, 1, -1, periodic=True) == grid.rank_of(0, 2)

    def test_neighbors4_counts(self):
        grid = CartGrid(3, 3)
        assert len(grid.neighbors4(grid.rank_of(1, 1))) == 4
        assert len(grid.neighbors4(grid.rank_of(0, 0))) == 2
        assert len(grid.neighbors4(grid.rank_of(0, 1))) == 3

    def test_neighbors4_periodic_excludes_self(self):
        grid = CartGrid(1, 3)
        # In a 1-wide dimension, periodic neighbors in x would be the rank
        # itself; they must not be listed.
        nbrs = grid.neighbors4(0, periodic=True)
        assert 0 not in nbrs

    def test_bad_dim_rejected(self):
        with pytest.raises(ConfigurationError):
            CartGrid(2, 2).neighbor(0, 2, 1)

    def test_degenerate_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            CartGrid(0, 3)
