"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    CommunicationError,
    ConfigurationError,
    DeadlockError,
    ExperimentError,
    MeasurementError,
    PredictionError,
    ReproError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            SimulationError,
            CommunicationError,
            MeasurementError,
            PredictionError,
            ExperimentError,
        ],
    )
    def test_everything_is_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_simulation_subtypes(self):
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(CommunicationError, SimulationError)

    def test_one_except_clause_catches_all(self):
        with pytest.raises(ReproError):
            raise MeasurementError("x")


class TestDeadlockError:
    def test_carries_blocked_names(self):
        err = DeadlockError(["rank2", "rank0"])
        assert err.blocked == ["rank2", "rank0"]
        assert "2 process(es)" in str(err)
        assert "rank0" in str(err)

    def test_empty_list_allowed(self):
        assert DeadlockError([]).blocked == []
