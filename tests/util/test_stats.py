"""Statistics helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.stats import (
    geometric_mean,
    mean,
    percent_relative_error,
    relative_error,
    stddev,
    summary,
    weighted_average,
)


class TestMean:
    def test_basic(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_generator_input(self):
        assert mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean([])


class TestStddev:
    def test_sample_stddev(self):
        assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138089935, rel=1e-6
        )

    def test_single_value_is_zero(self):
        assert stddev([5.0]) == 0.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_requires_positive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])


class TestWeightedAverage:
    def test_paper_weighting(self):
        """The §3 coefficient formula is this exact operation."""
        c_ab, c_da = 0.9, 1.1
        p_ab, p_da = 30.0, 10.0
        expected = (c_ab * p_ab + c_da * p_da) / (p_ab + p_da)
        assert weighted_average([c_ab, c_da], [p_ab, p_da]) == pytest.approx(expected)

    def test_equal_weights_is_mean(self):
        assert weighted_average([1.0, 3.0], [5.0, 5.0]) == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            weighted_average([1.0], [1.0, 2.0])

    def test_zero_total_weight(self):
        with pytest.raises(ConfigurationError):
            weighted_average([1.0], [0.0])

    def test_empty(self):
        with pytest.raises(ConfigurationError):
            weighted_average([], [])


class TestRelativeError:
    def test_symmetric_numerator(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_percent(self):
        assert percent_relative_error(123.0, 100.0) == pytest.approx(23.0)

    def test_zero_actual_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_error(1.0, 0.0)


class TestSummary:
    def test_fields(self):
        s = summary([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.std > 0

    def test_cv(self):
        s = summary([10.0, 10.0])
        assert s.cv == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summary([])
