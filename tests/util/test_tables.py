"""ASCII table rendering."""

import pytest

from repro.util.tables import Table


@pytest.fixture
def table():
    t = Table(title="Demo", columns=["Row", "A", "B"], precision=2)
    t.add_row("first", 1.234, (10.0, 5.678))
    t.add_row("second", "text", None)
    return t


class TestTable:
    def test_add_row_validates_width(self, table):
        with pytest.raises(ValueError, match="cells"):
            table.add_row("bad", 1.0)

    def test_cell_lookup(self, table):
        assert table.cell("first", "A") == 1.234
        with pytest.raises(KeyError):
            table.cell("missing", "A")

    def test_column_values(self, table):
        assert table.column_values("A") == [1.234, "text"]

    def test_row_labels(self, table):
        assert table.row_labels() == ["first", "second"]


class TestRendering:
    def test_float_precision(self, table):
        assert "1.23" in table.render()

    def test_tuple_renders_paper_style(self, table):
        assert "10.00 (5.68 %)" in table.render()

    def test_none_renders_empty(self, table):
        rendered = table.render()
        assert "None" not in rendered

    def test_title_and_header_present(self, table):
        rendered = table.render()
        assert rendered.startswith("Demo")
        assert "Row" in rendered and "| A" in rendered

    def test_notes_rendered(self, table):
        table.add_note("a footnote")
        assert "note: a footnote" in table.render()

    def test_alignment_consistent(self, table):
        lines = table.render().splitlines()
        data_lines = [line for line in lines if "|" in line]
        pipes = {tuple(i for i, c in enumerate(line) if c == "|") for line in data_lines}
        assert len(pipes) == 1  # all separator columns align

    def test_str_is_render(self, table):
        assert str(table) == table.render()
