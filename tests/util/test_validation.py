"""Validation helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import check_in, check_non_negative, check_positive, check_type


class TestCheckPositive:
    def test_passes_through(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_zero_ok(self):
        assert check_non_negative("x", 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -1)


class TestCheckIn:
    def test_member(self):
        assert check_in("mode", "a", {"a", "b"}) == "a"

    def test_non_member(self):
        with pytest.raises(ConfigurationError, match="mode must be one of"):
            check_in("mode", "z", {"a", "b"})


class TestCheckType:
    def test_single_type(self):
        assert check_type("n", 3, int) == 3

    def test_tuple_of_types(self):
        assert check_type("n", 3.0, (int, float)) == 3.0

    def test_rejects(self):
        with pytest.raises(ConfigurationError, match="n must be int"):
            check_type("n", "3", int)
